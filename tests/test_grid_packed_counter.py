"""Tests for the bit-packed cube counter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.subspace import Subspace
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.grid.packed_counter import PackedCubeCounter
from repro.search.brute_force import BruteForceSearch
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch


@pytest.fixture
def packed(small_cells):
    return PackedCubeCounter(small_cells)


class TestEquivalence:
    def test_counts_match_boolean_counter(self, small_counter, packed, rng):
        for _ in range(50):
            k = int(rng.integers(1, 4))
            dims = tuple(sorted(rng.choice(6, size=k, replace=False).tolist()))
            ranges = tuple(int(r) for r in rng.integers(0, 5, size=k))
            cube = Subspace(dims, ranges)
            assert packed.count(cube) == small_counter.count(cube)

    def test_masks_match(self, small_counter, packed):
        cube = Subspace((0, 3), (1, 2))
        np.testing.assert_array_equal(packed.mask(cube), small_counter.mask(cube))
        assert packed.mask(cube).dtype == bool

    def test_empty_subspace_counts_all(self, packed):
        assert packed.count(Subspace.empty()) == packed.n_points

    def test_covered_points_match(self, small_counter, packed):
        cube = Subspace((1,), (3,))
        np.testing.assert_array_equal(
            packed.covered_points(cube), small_counter.covered_points(cube)
        )

    def test_extension_counts_match(self, small_counter, packed):
        base = Subspace((0,), (2,))
        np.testing.assert_array_equal(
            packed.extension_counts(packed.mask(base), 3),
            small_counter.extension_counts(small_counter.mask(base), 3),
        )

    def test_non_multiple_of_eight_points(self):
        # Padding bits in the last packed word must never count.
        codes = np.zeros((13, 2), dtype=np.int16)
        cells = CellAssignment(codes, 3)
        packed = PackedCubeCounter(cells)
        assert packed.count(Subspace.empty()) == 13
        assert packed.count(Subspace((0,), (0,))) == 13
        assert packed.count(Subspace((0,), (1,))) == 0

    def test_missing_values(self, rng):
        data = rng.normal(size=(97, 4))
        data[rng.random(data.shape) < 0.3] = np.nan
        cells = EquiDepthDiscretizer(3).fit_transform(data)
        a, b = CubeCounter(cells), PackedCubeCounter(cells)
        for dim in range(4):
            for rng_ in range(3):
                cube = Subspace((dim,), (rng_,))
                assert a.count(cube) == b.count(cube)

    def test_memory_is_eighth(self, small_cells):
        dense = CubeCounter(small_cells).mask_memory_bytes()
        packed = PackedCubeCounter(small_cells).mask_memory_bytes()
        # Each packed row is zero-padded to an 8-byte (uint64 word)
        # boundary for the batch kernel: up to 7 slack bytes per mask.
        assert packed <= dense // 8 + small_cells.n_dims * small_cells.n_ranges * 8


class TestSearcherCompatibility:
    def test_brute_force_same_result(self, small_cells):
        dense = BruteForceSearch(CubeCounter(small_cells), 2, 10).run()
        packed = BruteForceSearch(PackedCubeCounter(small_cells), 2, 10).run()
        assert [p.subspace for p in dense.projections] == [
            p.subspace for p in packed.projections
        ]

    def test_evolutionary_same_result(self, small_cells):
        config = EvolutionaryConfig(population_size=20, max_generations=15)
        dense = EvolutionarySearch(
            CubeCounter(small_cells), 2, 5, config=config, random_state=3
        ).run()
        packed = EvolutionarySearch(
            PackedCubeCounter(small_cells), 2, 5, config=config, random_state=3
        ).run()
        assert [p.subspace for p in dense.projections] == [
            p.subspace for p in packed.projections
        ]

    def test_cache_still_works(self, packed):
        cube = Subspace((0, 1), (0, 0))
        first = packed.count(cube)
        second = packed.count(cube)
        assert first == second
        assert packed.n_cache_hits == 1


@settings(max_examples=30, deadline=None)
@given(data=st.data(), phi=st.integers(2, 5))
def test_property_packed_equals_dense(data, phi):
    """Packed and dense counters agree on arbitrary grids and cubes."""
    n_points = data.draw(st.integers(1, 50))
    n_dims = data.draw(st.integers(1, 4))
    codes = np.asarray(
        data.draw(
            st.lists(
                st.lists(
                    st.integers(-1, phi - 1), min_size=n_dims, max_size=n_dims
                ),
                min_size=n_points,
                max_size=n_points,
            )
        ),
        dtype=np.int16,
    )
    cells = CellAssignment(codes, phi)
    dense, packed = CubeCounter(cells), PackedCubeCounter(cells)
    k = data.draw(st.integers(1, n_dims))
    dims = tuple(
        sorted(
            data.draw(
                st.lists(
                    st.integers(0, n_dims - 1), min_size=k, max_size=k, unique=True
                )
            )
        )
    )
    ranges = tuple(
        data.draw(st.lists(st.integers(0, phi - 1), min_size=len(dims), max_size=len(dims)))
    )
    cube = Subspace(dims, ranges)
    assert dense.count(cube) == packed.count(cube)
    np.testing.assert_array_equal(dense.mask(cube), packed.mask(cube))
