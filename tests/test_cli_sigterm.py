"""End-to-end interruption: a real SIGTERM against the CLI process.

The in-process chaos suite (``test_run_lifecycle.py``) proves the
kill/resume guarantee at the library layer with injected cancellation;
this module closes the loop at the operating-system layer: a ``multik``
sweep run as a subprocess, killed with a real SIGTERM, must

* exit with the conventional ``128 + SIGTERM = 143``,
* print partial results plus a resume hint instead of a traceback,
* leave a complete, loadable checkpoint on disk, and
* finish under ``--resume`` with byte-identical output to a run that
  was never interrupted.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="POSIX signal semantics required"
)

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")
BASE_ARGS = [
    "--dataset", "housing",
    "--ks", "2", "3",
    "--seed", "0",
    "--phi", "5",
    "--projections", "5",
]


def cli(*args, **popen_kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "multik", *BASE_ARGS, *args],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
        **popen_kwargs,
    )


def wait_for_checkpoint(directory: Path, timeout: float = 120.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(directory.glob("search_k*.json")):
            return
        time.sleep(0.02)
    raise AssertionError(f"no checkpoint appeared in {directory} within {timeout}s")


@pytest.fixture(scope="module")
def reference_output():
    """Stdout of the sweep run to completion, never interrupted."""
    process = cli()
    stdout, stderr = process.communicate(timeout=600)
    assert process.returncode == 0, stderr
    return stdout


class TestSigterm:
    def test_sigterm_then_resume_matches_uninterrupted_run(
        self, tmp_path, reference_output
    ):
        ckpt = tmp_path / "ckpt"
        process = cli("--checkpoint-dir", str(ckpt))
        try:
            # Kill only once the first checkpoint is flushed, so the
            # interrupt provably lands mid-run, not before it started.
            wait_for_checkpoint(ckpt)
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=600)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()

        assert process.returncode == 143, stderr
        assert "Traceback" not in stderr
        assert "--resume" in stderr  # operator hint
        assert "stopped early: cancelled" in stdout

        # The flushed checkpoint is complete, valid JSON with a manifest.
        checkpoints = sorted(ckpt.glob("search_k*.json"))
        assert checkpoints
        payload = json.loads(checkpoints[0].read_text())
        assert payload["format_version"] == 1
        assert "manifest" in payload and "state" in payload

        resumed = cli("--checkpoint-dir", str(ckpt), "--resume")
        stdout, stderr = resumed.communicate(timeout=600)
        assert resumed.returncode == 0, stderr
        assert stdout == reference_output

    def test_resume_without_checkpoint_dir_is_an_error(self):
        process = cli("--resume")
        stdout, stderr = process.communicate(timeout=120)
        assert process.returncode != 0
        assert "--checkpoint-dir" in stderr
        assert "Traceback" not in stderr
