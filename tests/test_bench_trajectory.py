"""Benchmark trajectory format: schema lock, migration, regression gate.

``BENCH_engine.json`` is parsed blindly by the CI ``bench-gate`` job
(``benchmarks/check_regression.py``), so its shape is locked the same
way the lint JSON reporter's is (see ``test_analysis_framework.py``):
the exact key sets are asserted here, and any change must be a
deliberate schema-version bump, not drift.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.trajectory import (
    DEFAULT_METRIC,
    DEFAULT_THRESHOLD,
    ENTRY_KEYS,
    SCHEMA_VERSION,
    TOP_KEYS,
    append_entry,
    check_regression,
    load_trajectory,
    regression_main,
    validate_trajectory,
)
from repro.exceptions import ValidationError


def _entry(ts="2026-08-08T00:00:00+00:00", serial=0.004, native=None):
    backends = {"serial": {"batch_seconds": serial}}
    if native is not None:
        backends["native"] = {"batch_seconds": native, "kernel_tier": "c"}
    return {
        "timestamp": ts,
        "params": {"k": 4, "population": 500},
        "metrics": {"batch_seconds": serial},
        "backends": backends,
    }


def _doc(*entries):
    return {
        "benchmark": "counter_performance",
        "schema_version": SCHEMA_VERSION,
        "entries": list(entries),
    }


class TestSchemaLock:
    """The trajectory format is a contract — lock it."""

    def test_schema_is_locked(self):
        # Deliberate duplication: changing the format must fail here
        # and force a conscious schema_version bump.
        assert SCHEMA_VERSION == 2
        assert sorted(TOP_KEYS) == ["benchmark", "entries", "schema_version"]
        assert sorted(ENTRY_KEYS) == [
            "backends", "metrics", "params", "timestamp",
        ]
        assert DEFAULT_METRIC == "batch_seconds"
        assert DEFAULT_THRESHOLD == 0.20

    def test_written_file_matches_locked_shape(self, tmp_path):
        path = tmp_path / "t.json"
        entry = _entry(native=0.001)
        append_entry(
            path,
            benchmark="counter_performance",
            timestamp=entry["timestamp"],
            params=entry["params"],
            metrics=entry["metrics"],
            backends=entry["backends"],
        )
        payload = json.loads(path.read_text())
        assert sorted(payload) == sorted(TOP_KEYS)
        assert payload["schema_version"] == SCHEMA_VERSION
        (written,) = payload["entries"]
        assert sorted(written) == sorted(ENTRY_KEYS)

    def test_extra_top_key_rejected(self):
        doc = _doc(_entry())
        doc["extra"] = 1
        with pytest.raises(ValidationError, match="top-level keys"):
            validate_trajectory(doc)

    def test_missing_entry_key_rejected(self):
        entry = _entry()
        del entry["backends"]
        with pytest.raises(ValidationError, match="entry 0 keys"):
            validate_trajectory(_doc(entry))

    def test_wrong_schema_version_rejected(self):
        doc = _doc()
        doc["schema_version"] = 99
        with pytest.raises(ValidationError, match="schema_version"):
            validate_trajectory(doc)

    def test_non_string_timestamp_rejected(self):
        entry = _entry()
        entry["timestamp"] = 12345
        with pytest.raises(ValidationError, match="timestamp"):
            validate_trajectory(_doc(entry))


class TestLoadAndMigrate:
    def test_missing_file_yields_fresh_trajectory(self, tmp_path):
        doc = load_trajectory(tmp_path / "none.json", benchmark="x")
        assert doc == {"benchmark": "x", "schema_version": SCHEMA_VERSION,
                       "entries": []}

    def test_missing_file_without_benchmark_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="does not exist"):
            load_trajectory(tmp_path / "none.json")

    def test_v1_snapshot_migrates(self, tmp_path):
        # The pre-trajectory BENCH_engine.json shape: one flat snapshot.
        path = tmp_path / "v1.json"
        path.write_text(json.dumps({
            "benchmark": "counter_performance",
            "params": {"batch": {"k": 4}},
            "metrics": {"batch_seconds": 0.00457, "batch_speedup": 3.31},
        }))
        doc = load_trajectory(path)
        validate_trajectory(doc)
        (entry,) = doc["entries"]
        assert entry["timestamp"] is None
        # The v1 batch timing was the serial batched path.
        assert entry["backends"] == {"serial": {"batch_seconds": 0.00457}}
        assert entry["metrics"]["batch_speedup"] == 3.31

    def test_benchmark_name_mismatch_raises(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text(json.dumps(_doc()))
        with pytest.raises(ValidationError, match="tracks benchmark"):
            load_trajectory(path, benchmark="other")

    def test_malformed_json_raises(self, tmp_path):
        path = tmp_path / "t.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_trajectory(path)

    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "t.json"
        for serial in (0.004, 0.003, 0.005):
            append_entry(
                path, benchmark="b", timestamp=None, params={},
                metrics={}, backends={"serial": {"batch_seconds": serial}},
            )
        doc = load_trajectory(path)
        assert [e["backends"]["serial"]["batch_seconds"]
                for e in doc["entries"]] == [0.004, 0.003, 0.005]


class TestRegressionGate:
    def test_single_entry_nothing_to_compare(self):
        assert check_regression(_doc(_entry())) == []

    def test_within_threshold_passes(self):
        doc = _doc(_entry(serial=0.004), _entry(serial=0.0045))
        findings = check_regression(doc)
        assert [f.regressed for f in findings] == [False]
        assert findings[0].ratio == pytest.approx(0.0045 / 0.004)

    def test_regression_beyond_threshold_flagged(self):
        doc = _doc(_entry(serial=0.004), _entry(serial=0.006))
        (finding,) = check_regression(doc)
        assert finding.regressed
        assert finding.backend == "serial"
        assert "REGRESSION" in finding.describe()

    def test_compares_against_best_not_latest(self):
        # 0.0049 is faster than the previous run but >20% above the
        # best ever — still a regression: the gate is monotone.
        doc = _doc(
            _entry(serial=0.003), _entry(serial=0.006), _entry(serial=0.0049)
        )
        (finding,) = check_regression(doc)
        assert finding.best == 0.003
        assert finding.regressed

    def test_new_backend_cannot_regress(self):
        doc = _doc(_entry(), _entry(native=0.001))
        backends = [f.backend for f in check_regression(doc)]
        assert backends == ["serial"]  # native has no history yet

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError, match="threshold"):
            check_regression(_doc(), threshold=-0.1)


class TestRegressionCLI:
    def _write(self, tmp_path, doc):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps(doc))
        return str(path)

    def test_exit_0_when_ok(self, tmp_path, capsys):
        path = self._write(
            tmp_path, _doc(_entry(serial=0.004), _entry(serial=0.004))
        )
        assert regression_main([path]) == 0
        assert "ok" in capsys.readouterr().out

    def test_exit_0_with_nothing_to_compare(self, tmp_path, capsys):
        path = self._write(tmp_path, _doc(_entry()))
        assert regression_main([path]) == 0
        assert "nothing to compare" in capsys.readouterr().out

    def test_exit_1_on_regression(self, tmp_path, capsys):
        path = self._write(
            tmp_path, _doc(_entry(serial=0.004), _entry(serial=0.010))
        )
        assert regression_main([path]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_exit_2_on_malformed(self, tmp_path, capsys):
        path = tmp_path / "BENCH.json"
        path.write_text("[]")
        assert regression_main([str(path)]) == 2
        assert "check_regression:" in capsys.readouterr().out

    def test_threshold_flag(self, tmp_path):
        path = self._write(
            tmp_path, _doc(_entry(serial=0.004), _entry(serial=0.0045))
        )
        assert regression_main([path, "--threshold", "0.05"]) == 1
        assert regression_main([path, "--threshold", "0.20"]) == 0
