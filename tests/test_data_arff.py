"""Tests for the ARFF loader."""

import numpy as np
import pytest

from repro.data.arff import load_arff
from repro.exceptions import DatasetError


GOOD = """\
% UCI-style comment
@relation toy

@attribute age numeric
@attribute pressure REAL
@attribute diagnosis {healthy, sick, unknown}

@data
63, 120.5, healthy
17, ?, sick
% inline comment row
45, 180.0, unknown
"""


class TestBasicLoading:
    def test_numeric_parsing(self):
        dataset = load_arff(GOOD)
        assert dataset.name == "toy"
        assert dataset.feature_names == ("age", "pressure", "diagnosis")
        np.testing.assert_allclose(dataset.values[:, 0], [63, 17, 45])

    def test_missing_becomes_nan(self):
        dataset = load_arff(GOOD)
        assert np.isnan(dataset.values[1, 1])

    def test_nominal_factorized_in_declaration_order(self):
        dataset = load_arff(GOOD)
        np.testing.assert_array_equal(dataset.values[:, 2], [0, 1, 2])

    def test_label_attribute(self):
        dataset = load_arff(GOOD, label_attribute="diagnosis")
        assert dataset.feature_names == ("age", "pressure")
        np.testing.assert_array_equal(dataset.labels, [0, 1, 2])

    def test_file_loading(self, tmp_path):
        path = tmp_path / "toy.arff"
        path.write_text(GOOD)
        dataset = load_arff(path)
        assert dataset.n_points == 3

    def test_quoted_attribute_names(self):
        text = "@relation q\n@attribute 'my attr' numeric\n@data\n1\n2\n"
        dataset = load_arff(text)
        assert dataset.feature_names == ("my attr",)

    def test_name_override(self):
        assert load_arff(GOOD, name="renamed").name == "renamed"


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(DatasetError, match="not found"):
            load_arff("/nonexistent.arff")

    def test_no_data_section(self):
        with pytest.raises(DatasetError, match="@data"):
            load_arff("@relation x\n@attribute a numeric\n")

    def test_empty_data(self):
        with pytest.raises(DatasetError, match="empty"):
            load_arff("@relation x\n@attribute a numeric\n@data\n")

    def test_unsupported_type(self):
        with pytest.raises(DatasetError, match="unsupported"):
            load_arff("@relation x\n@attribute a string\n@data\nfoo\n")

    def test_sparse_rejected(self):
        text = "@relation x\n@attribute a numeric\n@data\n{0 1}\n"
        with pytest.raises(DatasetError, match="sparse"):
            load_arff(text)

    def test_row_width_mismatch(self):
        text = "@relation x\n@attribute a numeric\n@attribute b numeric\n@data\n1\n"
        with pytest.raises(DatasetError, match="has 1 values"):
            load_arff(text)

    def test_bad_numeric_token(self):
        text = "@relation x\n@attribute a numeric\n@data\nabc\n"
        with pytest.raises(DatasetError, match="not numeric"):
            load_arff(text)

    def test_undeclared_nominal_level(self):
        text = "@relation x\n@attribute a {u,v}\n@data\nw\n"
        with pytest.raises(DatasetError, match="declared level"):
            load_arff(text)

    def test_label_must_be_nominal(self):
        with pytest.raises(DatasetError, match="nominal"):
            load_arff(GOOD, label_attribute="age")

    def test_label_must_exist(self):
        with pytest.raises(DatasetError, match="not declared"):
            load_arff(GOOD, label_attribute="nope")

    def test_missing_class_label_rejected(self):
        text = "@relation x\n@attribute a numeric\n@attribute c {u,v}\n@data\n1,?\n"
        with pytest.raises(DatasetError, match="missing class"):
            load_arff(text, label_attribute="c")

    def test_unknown_directive(self):
        with pytest.raises(DatasetError, match="unrecognized"):
            load_arff("@bogus x\n@data\n1\n")


class TestPipelineIntegration:
    def test_arff_through_detector(self):
        # An ARFF dataset flows through the whole pipeline.
        import io as _io

        rows = ["@relation pipe", "@attribute x numeric", "@attribute y numeric", "@data"]
        rng = np.random.default_rng(0)
        latent = rng.normal(size=120)
        xs = latent + rng.normal(scale=0.1, size=120)
        ys = latent + rng.normal(scale=0.1, size=120)
        xs[3], ys[3] = np.quantile(xs, 0.05), np.quantile(ys, 0.95)
        rows += [f"{a:.5f},{b:.5f}" for a, b in zip(xs, ys, strict=True)]
        dataset = load_arff(_io.StringIO("\n".join(rows) + "\n"))

        from repro import SubspaceOutlierDetector

        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=4, n_projections=5, method="brute_force"
        )
        result = detector.detect(dataset.values)
        assert 3 in result.outlier_indices
