"""Chaos suite for the run lifecycle: kill, checkpoint, resume, recover.

The headline guarantee under test: a search killed at *any* safe
boundary and resumed from its checkpoint produces **bit-identical**
results to the uninterrupted run — same projections, same counts, same
evaluation totals.  Cancellation is injected deterministically through
the :class:`~repro.run.cancel.CancelAfterBoundaries` chaos token (every
search polls exactly once per GA generation / brute-force level), so
each parametrized kill lands on a precise, reproducible boundary.

Also covered here: the atomic writers (a crash mid-write never leaves a
torn file), checkpoint corruption recovery (fall back one boundary to
``.prev.json``), stale-manifest rejection, signal routing, and the
counting-pool leak finalizer.
"""

from __future__ import annotations

import gc
import json
import os
import signal
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro._atomic import atomic_write_json, atomic_write_text, atomic_writer
from repro.core.detector import SubspaceOutlierDetector
from repro.core.multik import detect_across_dimensionalities
from repro.core.params import CountingBackend
from repro.core.subspace import Subspace
from repro.engine.events import InMemoryEventSink
from repro.exceptions import CheckpointError, SearchCancelled, ValidationError
from repro.grid.counter import CubeCounter
from repro.grid.health import BackendHealth
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.parallel import CountingPool
from repro.grid.sharded import ShardCheckpointer, ShardedCounter, ShardedMaskStore
from repro.run.cancel import CancelAfterBoundaries, CancelToken, check_stop_reason
from repro.run.checkpoint import (
    CheckpointStore,
    SearchCheckpointer,
    encode_rng_state,
)
from repro.run.controller import RunController
from repro.run.signals import exit_code_for_signal
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.brute_force import BruteForceSearch
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch


@pytest.fixture(scope="module")
def lifecycle_data():
    """Module-scoped twin of ``lifecycle_data`` (reference runs are reused)."""
    return np.random.default_rng(12345).normal(size=(200, 6))


@pytest.fixture(scope="module")
def lifecycle_counter(lifecycle_data):
    return CubeCounter(EquiDepthDiscretizer(5).fit_transform(lifecycle_data))


def outcome_key(outcome):
    """Everything that must match between a resumed and a clean run."""
    return (
        [(p.subspace, p.count, p.coefficient) for p in outcome.projections],
        outcome.stats.get("generations"),
        outcome.stats.get("evaluations"),
        outcome.stopped_reason,
    )


def result_key(result):
    """Bit-identity key for a full DetectionResult."""
    return (
        [(p.subspace, p.count, p.coefficient) for p in result.projections],
        result.outlier_indices.tolist(),
        result.stats.get("stopped_reason"),
    )


def ga_search(counter, **overrides):
    params = dict(
        config=EvolutionaryConfig(
            population_size=24, max_generations=40, restarts=2
        ),
        random_state=7,
    )
    params.update(overrides)
    return EvolutionarySearch(counter, 2, 5, **params)


def bf_search(counter, **overrides):
    params = dict(strategy="level_batch")
    params.update(overrides)
    return BruteForceSearch(counter, 3, 5, **params)


# ----------------------------------------------------------------------
class TestAtomicWriters:
    def test_write_text_replaces(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_crash_mid_write_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("precious")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("partial garbage")
                raise RuntimeError("simulated crash")
        assert target.read_text() == "precious"
        # No stray temp files either.
        assert [p.name for p in tmp_path.iterdir()] == ["out.txt"]

    def test_unencodable_json_never_clobbers(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_json(target, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"ok": 1}


# ----------------------------------------------------------------------
class TestCancelToken:
    def test_first_cause_wins(self):
        token = CancelToken()
        token.cancel(reason="signal", signal_number=signal.SIGTERM)
        token.cancel(reason="other", signal_number=signal.SIGINT)
        assert token.reason == "signal"
        assert token.signal_number == signal.SIGTERM

    def test_inject_after_n_boundaries(self):
        token = CancelAfterBoundaries(2)
        assert not token.poll()
        assert not token.poll()
        assert token.poll()
        assert token.cancelled

    def test_inject_immediately(self):
        assert CancelAfterBoundaries(0).poll()

    def test_negative_budget_rejected(self):
        with pytest.raises(ValidationError):
            CancelAfterBoundaries(-1)

    def test_stop_reason_vocabulary(self):
        assert check_stop_reason("deadline") == "deadline"
        with pytest.raises(ValidationError):
            check_stop_reason("tired")

    def test_exit_codes(self):
        assert exit_code_for_signal(None) == 0
        assert exit_code_for_signal(signal.SIGINT) == 130
        assert exit_code_for_signal(signal.SIGTERM) == 143


class TestSignalRouting:
    def test_sigterm_flips_token_instead_of_killing(self):
        controller = RunController()
        with controller.signal_handlers():
            os.kill(os.getpid(), signal.SIGTERM)
            # The handler ran synchronously in this (main) thread.
            assert controller.token.cancelled
        assert controller.token.reason == "signal"
        assert controller.exit_code() == 143
        # Previous disposition restored on exit.
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_should_stop_reports_cancellation(self):
        controller = RunController(token=CancelAfterBoundaries(0))
        assert controller.should_stop() == "cancelled"

    def test_should_stop_reports_deadline(self):
        controller = RunController(max_seconds=1e-9)
        assert controller.deadline_passed()
        assert controller.should_stop() == "deadline"


# ----------------------------------------------------------------------
class TestCheckpointStore:
    def test_round_trip_and_rotation(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("s", {"boundary": 1})
        store.save("s", {"boundary": 2})
        assert store.load("s") == {"boundary": 2}
        assert json.loads(store.prev_path("s").read_text()) == {"boundary": 1}

    def test_corrupt_current_falls_back_one_boundary(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("s", {"boundary": 1})
        store.save("s", {"boundary": 2})
        store.path("s").write_text('{"boundary": 2')  # truncated mid-write
        assert store.load("s") == {"boundary": 1}

    def test_all_corrupt_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("s", {"boundary": 1})
        store.save("s", {"boundary": 2})
        store.path("s").write_text("garbage")
        store.prev_path("s").write_text("more garbage")
        with pytest.raises(CheckpointError, match="corrupt"):
            store.load("s")

    def test_missing_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            CheckpointStore(tmp_path).load("nope")

    def test_delete_removes_both_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("s", {"boundary": 1})
        store.save("s", {"boundary": 2})
        store.delete("s")
        assert not store.exists("s")
        store.delete("s")  # idempotent


class TestSearchCheckpointer:
    def test_interval_policy(self, tmp_path):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "s", every=3)
        written = [b for b in range(10) if stream.maybe_save(b, lambda: {"b": b})]
        assert written == [0, 3, 6, 9]

    def test_build_state_lazy(self, tmp_path):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "s", every=2)

        def explode():
            raise AssertionError("must not serialize on a skipped boundary")

        assert not stream.maybe_save(1, explode)

    def test_stale_manifest_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        SearchCheckpointer(store, "s", manifest={"params": "a"}).save({"x": 1})
        stale = SearchCheckpointer(store, "s", manifest={"params": "b"})
        with pytest.raises(CheckpointError, match="stale"):
            stale.load()

    def test_unknown_format_version_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("s", {"format_version": 99, "manifest": {}, "state": {}})
        with pytest.raises(CheckpointError, match="format version"):
            SearchCheckpointer(store, "s").load()

    def test_encode_rng_state_round_trips(self):
        rng = np.random.default_rng(np.random.MT19937(5))
        encoded = json.loads(json.dumps(encode_rng_state(rng.bit_generator.state)))
        fresh = np.random.default_rng(np.random.MT19937(0))
        fresh.bit_generator.state = encoded
        reference = np.random.default_rng(np.random.MT19937(5))
        assert fresh.integers(0, 1 << 30, 8).tolist() == reference.integers(
            0, 1 << 30, 8
        ).tolist()


# ----------------------------------------------------------------------
class TestKillResumeGA:
    """Kill the GA at randomized generation boundaries; resume bit-identically."""

    @pytest.fixture(scope="class")
    def reference(self, request):
        counter = request.getfixturevalue("lifecycle_counter")
        return outcome_key(ga_search(counter).run())

    @pytest.mark.parametrize("kill_at", [1, 3, 7, 12])
    def test_kill_and_resume_is_bit_identical(
        self, lifecycle_counter, tmp_path, reference, kill_at
    ):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "ga")
        token = CancelAfterBoundaries(kill_at)
        interrupted = ga_search(
            lifecycle_counter, cancel_token=token, checkpointer=stream
        ).run()
        if token.cancelled:
            assert interrupted.stopped_reason == "cancelled"
            assert not interrupted.completed
        assert stream.exists()
        resumed = ga_search(lifecycle_counter, checkpointer=stream).run(
            resume_from=True
        )
        assert outcome_key(resumed) == reference

    def test_partial_outcome_still_ordered_and_scored(self, lifecycle_counter, tmp_path):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "ga")
        interrupted = ga_search(
            lifecycle_counter,
            cancel_token=CancelAfterBoundaries(2),
            checkpointer=stream,
        ).run()
        coefficients = [p.coefficient for p in interrupted.projections]
        assert coefficients == sorted(coefficients)

    def test_corrupt_checkpoint_recovers_from_prev(
        self, lifecycle_counter, tmp_path, reference
    ):
        store = CheckpointStore(tmp_path)
        stream = SearchCheckpointer(store, "ga")
        ga_search(
            lifecycle_counter,
            cancel_token=CancelAfterBoundaries(4),
            checkpointer=stream,
        ).run()
        assert store.prev_path("ga").exists()
        # Torn current file: resume must fall back one boundary and the
        # deterministic replay still lands on the identical final state.
        store.path("ga").write_text(store.path("ga").read_text()[:40])
        resumed = ga_search(lifecycle_counter, checkpointer=stream).run(
            resume_from=True
        )
        assert outcome_key(resumed) == reference

    def test_resume_true_without_checkpointer_rejected(self, lifecycle_counter):
        with pytest.raises(CheckpointError, match="checkpointer"):
            ga_search(lifecycle_counter).run(resume_from=True)

    def test_resume_from_wrong_algorithm_rejected(self, lifecycle_counter, tmp_path):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "bf")
        bf_search(
            lifecycle_counter,
            cancel_token=CancelAfterBoundaries(1),
            checkpointer=stream,
        ).run()
        with pytest.raises(CheckpointError, match="brute_force"):
            ga_search(lifecycle_counter, checkpointer=stream).run(resume_from=True)

    def test_resume_of_finished_run_re_terminates_identically(
        self, lifecycle_counter, tmp_path, reference
    ):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "ga")
        finished = ga_search(lifecycle_counter, checkpointer=stream).run()
        assert outcome_key(finished) == reference
        replayed = ga_search(lifecycle_counter, checkpointer=stream).run(
            resume_from=True
        )
        assert outcome_key(replayed) == reference


class TestKillResumeBruteForce:
    @pytest.fixture(scope="class")
    def reference(self, request):
        counter = request.getfixturevalue("lifecycle_counter")
        return outcome_key(bf_search(counter).run())

    @pytest.mark.parametrize("kill_at", [1, 2])
    def test_kill_and_resume_is_bit_identical(
        self, lifecycle_counter, tmp_path, reference, kill_at
    ):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "bf")
        token = CancelAfterBoundaries(kill_at)
        interrupted = bf_search(
            lifecycle_counter, cancel_token=token, checkpointer=stream
        ).run()
        if token.cancelled:
            assert interrupted.stopped_reason == "cancelled"
        assert stream.exists()
        resumed = bf_search(lifecycle_counter, checkpointer=stream).run(
            resume_from=True
        )
        assert outcome_key(resumed) == reference

    def test_uninterrupted_level_batch_reports_converged(self, lifecycle_counter):
        outcome = bf_search(lifecycle_counter).run()
        assert outcome.stopped_reason == "converged"
        assert outcome.completed

    def test_checkpointing_requires_level_batch(self, lifecycle_counter, tmp_path):
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "bf")
        with pytest.raises(ValidationError, match="level_batch"):
            BruteForceSearch(
                lifecycle_counter, 2, 5, strategy="depth_first", checkpointer=stream
            )

    def test_cancelled_depth_first_returns_partial(self, lifecycle_counter):
        # Depth-first has no level boundaries: it only reads the raw flag
        # at its pruning chunks, so cancel up front rather than injecting.
        token = CancelToken()
        token.cancel(reason="test")
        outcome = BruteForceSearch(
            lifecycle_counter, 3, 5, strategy="depth_first", cancel_token=token
        ).run()
        assert outcome.stopped_reason == "cancelled"
        assert not outcome.completed


# ----------------------------------------------------------------------
class TestDetectorLifecycle:
    KWARGS = dict(
        dimensionality=2,
        n_projections=5,
        n_ranges=5,
        method="evolutionary",
        config=EvolutionaryConfig(population_size=24, max_generations=40),
        random_state=11,
    )

    @pytest.fixture(scope="class")
    def reference(self, request):
        data = request.getfixturevalue("lifecycle_data")
        result = SubspaceOutlierDetector(**self.KWARGS).detect(data)
        return result_key(result)

    def test_kill_then_resume_matches_clean_run(
        self, lifecycle_data, tmp_path, reference
    ):
        controller = RunController(
            checkpoint_dir=tmp_path, token=CancelAfterBoundaries(3)
        )
        partial = SubspaceOutlierDetector(
            controller=controller, **self.KWARGS
        ).detect(lifecycle_data)
        assert partial.stopped_reason == "cancelled"
        assert partial.cancelled
        resumed = SubspaceOutlierDetector(
            controller=RunController(checkpoint_dir=tmp_path), **self.KWARGS
        ).detect(lifecycle_data, resume=True)
        assert result_key(resumed) == reference
        assert not resumed.cancelled

    def test_resume_with_different_params_rejected(self, lifecycle_data, tmp_path):
        controller = RunController(
            checkpoint_dir=tmp_path, token=CancelAfterBoundaries(3)
        )
        SubspaceOutlierDetector(controller=controller, **self.KWARGS).detect(
            lifecycle_data
        )
        changed = dict(self.KWARGS, random_state=99)
        with pytest.raises(CheckpointError, match="stale"):
            SubspaceOutlierDetector(
                controller=RunController(checkpoint_dir=tmp_path), **changed
            ).detect(lifecycle_data, resume=True)

    def test_resume_with_different_data_rejected(self, lifecycle_data, tmp_path):
        controller = RunController(
            checkpoint_dir=tmp_path, token=CancelAfterBoundaries(3)
        )
        SubspaceOutlierDetector(controller=controller, **self.KWARGS).detect(
            lifecycle_data
        )
        other = np.asarray(lifecycle_data).copy()
        other[0, 0] += 100.0
        with pytest.raises(CheckpointError, match="stale"):
            SubspaceOutlierDetector(
                controller=RunController(checkpoint_dir=tmp_path), **self.KWARGS
            ).detect(other, resume=True)

    def test_expired_budget_reports_deadline_not_error(self, lifecycle_data):
        # The run-wide budget can be spent before a search even starts
        # (e.g. the previous k of a sweep consumed it): the detector must
        # still return a deadline-stopped partial, never a crash.
        controller = RunController(max_seconds=1e-9)
        assert controller.deadline_passed()
        result = SubspaceOutlierDetector(
            controller=controller, **self.KWARGS
        ).detect(lifecycle_data)
        assert result.stopped_reason == "deadline"
        assert not result.cancelled

    def test_resume_without_checkpoint_dir_rejected(self, lifecycle_data):
        detector = SubspaceOutlierDetector(
            controller=RunController(), **self.KWARGS
        )
        with pytest.raises(ValidationError, match="checkpoint_dir"):
            detector.detect(lifecycle_data, resume=True)


class TestMultiKLifecycle:
    DETECTOR_KWARGS = dict(
        n_projections=5,
        n_ranges=5,
        method="evolutionary",
        config=EvolutionaryConfig(population_size=24, max_generations=40),
        random_state=11,
    )
    KS = [1, 2]

    def sweep(self, data, **lifecycle):
        return detect_across_dimensionalities(
            data,
            self.KS,
            detector_kwargs=self.DETECTOR_KWARGS,
            **lifecycle,
        )

    @pytest.fixture(scope="class")
    def reference(self, request):
        data = request.getfixturevalue("lifecycle_data")
        sweep = self.sweep(data)
        return {k: result_key(r) for k, r in sweep.results.items()}

    def test_interrupted_sweep_resumes_without_recomputing(
        self, lifecycle_data, tmp_path, reference
    ):
        controller = RunController(
            checkpoint_dir=tmp_path, token=CancelAfterBoundaries(8)
        )
        partial = self.sweep(lifecycle_data, controller=controller)
        assert partial.stopped_reason == "cancelled"
        assert partial.cancelled
        assert "stopped early: cancelled" in "\n".join(partial.summary_lines())
        store = controller.store
        completed_ks = [k for k in self.KS if store.exists(f"result_k{k}")]
        # Resume: completed ks must come from their result checkpoints,
        # the in-flight k from its search checkpoint — bit-identical.
        resumed = self.sweep(
            lifecycle_data,
            controller=RunController(checkpoint_dir=tmp_path),
            resume=True,
        )
        assert resumed.stopped_reason == "converged"
        assert {k: result_key(r) for k, r in resumed.results.items()} == reference
        # A completed k's result file survives the resumed run unchanged.
        for k in completed_ks:
            assert store.exists(f"result_k{k}")

    def test_uninterrupted_sweep_converges(self, lifecycle_data, reference):
        sweep = self.sweep(lifecycle_data)
        assert sweep.stopped_reason == "converged"
        assert not sweep.cancelled
        assert {k: result_key(r) for k, r in sweep.results.items()} == reference

    def test_resume_without_store_rejected(self, lifecycle_data):
        with pytest.raises(ValidationError, match="checkpoint_dir"):
            self.sweep(lifecycle_data, controller=RunController(), resume=True)

    def test_controller_in_detector_kwargs_rejected(self, lifecycle_data):
        with pytest.raises(ValidationError, match="controller"):
            detect_across_dimensionalities(
                lifecycle_data,
                self.KS,
                detector_kwargs={"controller": RunController()},
            )


# ----------------------------------------------------------------------
class KillAfterShardChecks(CancelToken):
    """Chaos token for the out-of-core counter: flips after *n* reads.

    The sharded counter checks ``token.cancelled`` exactly once per
    pending shard, so a read budget lands the kill on a precise,
    reproducible shard boundary mid-dataset — the scenario the shard
    checkpointer exists for.
    """

    def __init__(self, n: int) -> None:
        super().__init__()
        self._budget = n

    @property
    def cancelled(self) -> bool:
        if not super().cancelled:
            if self._budget <= 0:
                self.cancel(reason="injected")
            else:
                self._budget -= 1
        return super().cancelled


class TestShardedKillResume:
    """Kill out-of-core counting at randomized shard boundaries; resume
    must replay the checkpointed shards and merge bit-identically."""

    @pytest.fixture(scope="class")
    def sharded_cells(self, request):
        data = request.getfixturevalue("lifecycle_data")
        return EquiDepthDiscretizer(5).fit_transform(data)

    @pytest.fixture(scope="class")
    def sharded_store(self, sharded_cells, tmp_path_factory):
        # 200 rows in 24-row shards: 9 shards, the last one ragged.
        return ShardedMaskStore.build(
            sharded_cells, tmp_path_factory.mktemp("lifecycle_store"),
            shard_rows=24,
        )

    @pytest.fixture(scope="class")
    def cubes(self):
        # Two k-groups (k=1 and k=2), so the kill can land while one
        # group's shard stream is mid-flight.
        ones = [Subspace((d,), (r,)) for d in range(6) for r in range(5)]
        twos = [
            Subspace((d, d + 1), (r, (r + 2) % 5))
            for d in range(5)
            for r in range(5)
        ]
        return ones + twos

    @pytest.fixture(scope="class")
    def reference(self, sharded_cells, cubes):
        counter = PackedCubeCounter(sharded_cells)
        try:
            return counter.count_batch(cubes).tolist()
        finally:
            counter.close()

    @pytest.mark.parametrize("kill_after", [1, 5, 12])
    def test_kill_and_resume_is_bit_identical(
        self, sharded_store, cubes, reference, tmp_path, kill_after
    ):
        checkpointer = ShardCheckpointer(CheckpointStore(tmp_path))
        interrupted = ShardedCounter(sharded_store, checkpointer=checkpointer)
        interrupted.set_cancel_token(KillAfterShardChecks(kill_after))
        with pytest.raises(SearchCancelled):
            interrupted.count_batch(cubes)
        interrupted.close()
        # The in-flight group left its per-shard progress behind.
        assert checkpointer.store.exists(checkpointer.name)
        sink = InMemoryEventSink()
        resumed = ShardedCounter(sharded_store, checkpointer=checkpointer)
        resumed.set_event_sink(sink)
        try:
            assert resumed.count_batch(cubes).tolist() == reference
        finally:
            resumed.close()
        # Every checkpointed shard was replayed, never recounted, and
        # the two groups add up to full coverage of the store.
        assert resumed.n_shards_resumed == kill_after
        assert (
            resumed.n_shards_resumed + resumed.n_shards_counted
            == 2 * sharded_store.n_shards
        )
        actions = [e.payload["action"] for e in sink.of_type("shard_counted")]
        assert actions.count("resumed") == kill_after
        # Both groups completed: the progress stream is gone.
        assert not checkpointer.store.exists(checkpointer.name)

    def test_resume_under_different_batch_ignores_stream(
        self, sharded_store, cubes, reference, tmp_path
    ):
        checkpointer = ShardCheckpointer(CheckpointStore(tmp_path))
        interrupted = ShardedCounter(sharded_store, checkpointer=checkpointer)
        interrupted.set_cancel_token(KillAfterShardChecks(4))
        with pytest.raises(SearchCancelled):
            interrupted.count_batch(cubes)
        interrupted.close()
        # A *different* batch must not replay the stale stream — its
        # digest differs, so everything is recounted from the store.
        other = [Subspace((d,), (0,)) for d in range(6)]
        fresh = ShardedCounter(sharded_store, checkpointer=checkpointer)
        try:
            expected = ShardedCounter(sharded_store).count_batch(other)
            assert fresh.count_batch(other).tolist() == expected.tolist()
        finally:
            fresh.close()
        assert fresh.n_shards_resumed == 0

    def test_level_batch_search_kill_resume_over_store(
        self, sharded_cells, sharded_store, tmp_path
    ):
        # The full engine stack on the out-of-core counter: a killed
        # level-batch enumeration resumes from its search checkpoint
        # and lands on the in-memory searcher's exact outcome.
        memory = CubeCounter(sharded_cells)
        reference = outcome_key(bf_search(memory).run())
        memory.close()
        stream = SearchCheckpointer(CheckpointStore(tmp_path), "bf")
        token = CancelAfterBoundaries(1)
        interrupted_counter = ShardedCounter(
            sharded_store, checkpointer=ShardCheckpointer(CheckpointStore(tmp_path))
        )
        interrupted = bf_search(
            interrupted_counter, cancel_token=token, checkpointer=stream
        ).run()
        interrupted_counter.close()
        assert interrupted.stopped_reason == "cancelled"
        resumed_counter = ShardedCounter(
            sharded_store, checkpointer=ShardCheckpointer(CheckpointStore(tmp_path))
        )
        resumed = bf_search(resumed_counter, checkpointer=stream).run(
            resume_from=True
        )
        resumed_counter.close()
        assert outcome_key(resumed) == reference


class TestShardedDetectorLifecycle:
    """detect() with --mmap-dir semantics: kill, resume, bit-identity."""

    KWARGS = dict(
        dimensionality=2,
        n_projections=5,
        n_ranges=5,
        method="evolutionary",
        config=EvolutionaryConfig(population_size=24, max_generations=40),
        random_state=11,
        packed=True,
    )

    @pytest.fixture(scope="class")
    def reference(self, request):
        data = request.getfixturevalue("lifecycle_data")
        return result_key(SubspaceOutlierDetector(**self.KWARGS).detect(data))

    def test_clean_mmap_run_matches_in_memory(
        self, lifecycle_data, tmp_path, reference
    ):
        result = SubspaceOutlierDetector(
            mmap_dir=tmp_path / "store", shard_rows=32, **self.KWARGS
        ).detect(lifecycle_data)
        assert result_key(result) == reference
        assert (tmp_path / "store" / "manifest.json").exists()

    def test_kill_then_resume_matches_in_memory(
        self, lifecycle_data, tmp_path, reference
    ):
        mmap_dir = tmp_path / "store"
        controller = RunController(
            checkpoint_dir=tmp_path / "ckpt", token=CancelAfterBoundaries(3)
        )
        partial = SubspaceOutlierDetector(
            controller=controller, mmap_dir=mmap_dir, shard_rows=32,
            **self.KWARGS,
        ).detect(lifecycle_data)
        assert partial.stopped_reason == "cancelled"
        # The resumed run reuses the shard store (no rebuild) and the
        # search checkpoint; the merged outcome is the in-memory one.
        mtime = (mmap_dir / "shard_00000.bin").stat().st_mtime_ns
        resumed = SubspaceOutlierDetector(
            controller=RunController(checkpoint_dir=tmp_path / "ckpt"),
            mmap_dir=mmap_dir, shard_rows=32, **self.KWARGS,
        ).detect(lifecycle_data, resume=True)
        assert result_key(resumed) == reference
        assert not resumed.cancelled
        assert (mmap_dir / "shard_00000.bin").stat().st_mtime_ns == mtime


# ----------------------------------------------------------------------
class TestPoolFinalizer:
    def test_dropped_pool_is_reclaimed(self, small_cells):
        counter = CubeCounter(small_cells)
        stack = counter._stack
        backend = CountingBackend(kind="process", n_workers=2)
        pool = CountingPool(stack, False, backend, BackendHealth())
        shm_name = pool._shm.name
        finalizer = pool._finalizer
        assert finalizer.alive
        del pool  # owner forgot close(); the finalizer must reclaim
        gc.collect()
        assert not finalizer.alive
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=shm_name)

    def test_closed_pool_detaches_finalizer(self, small_cells):
        counter = CubeCounter(small_cells)
        backend = CountingBackend(kind="process", n_workers=2)
        pool = CountingPool(counter._stack, False, backend, BackendHealth())
        finalizer = pool._finalizer
        pool.close()
        assert not finalizer.alive
