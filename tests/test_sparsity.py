"""Tests for the sparsity coefficient (Eq. 1) and significance machinery."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ValidationError
from repro.sparsity.coefficient import (
    cube_count_std,
    expected_count,
    sparsity_coefficient,
    sparsity_coefficients,
)
from repro.sparsity.statistics import (
    binomial_tail_probability,
    normal_tail_probability,
    significance_of_coefficient,
)


class TestEquationOne:
    def test_paper_formula_verbatim(self):
        # S(D) = (n - N f^k) / sqrt(N f^k (1 - f^k))
        n_points, phi, k, count = 10_000, 10, 3, 2
        f_k = (1 / phi) ** k
        expected = (count - n_points * f_k) / math.sqrt(
            n_points * f_k * (1 - f_k)
        )
        assert sparsity_coefficient(count, n_points, phi, k) == pytest.approx(expected)

    def test_zero_when_count_equals_expectation(self):
        # N=1000, phi=10, k=1 -> expected 100 points per range.
        assert sparsity_coefficient(100, 1000, 10, 1) == pytest.approx(0.0)

    def test_negative_below_expectation(self):
        assert sparsity_coefficient(10, 1000, 10, 1) < 0

    def test_positive_above_expectation(self):
        assert sparsity_coefficient(500, 1000, 10, 1) > 0

    def test_empty_cube_closed_form(self):
        # S(empty) = -sqrt(N / (phi^k - 1))  (used by Eq. 2).
        for n_points, phi, k in [(10_000, 10, 3), (452, 5, 2), (699, 4, 3)]:
            assert sparsity_coefficient(0, n_points, phi, k) == pytest.approx(
                -math.sqrt(n_points / (phi**k - 1))
            )

    def test_zero_dimensional_cube_is_zero(self):
        assert sparsity_coefficient(500, 500, 10, 0) == 0.0

    def test_count_cannot_exceed_n(self):
        with pytest.raises(ValidationError):
            sparsity_coefficient(11, 10, 10, 2)

    def test_phi_one_degenerate(self):
        with pytest.raises(ValidationError):
            sparsity_coefficient(5, 10, 1, 2)

    def test_rejects_negative_count(self):
        with pytest.raises(ValidationError):
            sparsity_coefficient(-1, 10, 10, 2)

    @given(
        count=st.integers(0, 500),
        n_points=st.integers(501, 100_000),
        phi=st.integers(2, 20),
        k=st.integers(1, 6),
    )
    def test_property_monotone_in_count(self, count, n_points, phi, k):
        a = sparsity_coefficient(count, n_points, phi, k)
        b = sparsity_coefficient(count + 1, n_points, phi, k)
        assert b > a

    @given(
        n_points=st.integers(10, 10_000),
        phi=st.integers(2, 12),
        k=st.integers(1, 5),
    )
    def test_property_sign_pivots_at_expectation(self, n_points, phi, k):
        mean = expected_count(n_points, phi, k)
        below = math.floor(mean)
        if below < mean:
            assert sparsity_coefficient(below, n_points, phi, k) < 0
        above = math.ceil(mean)
        if above > mean and above <= n_points:
            assert sparsity_coefficient(above, n_points, phi, k) > 0


class TestHelpers:
    def test_expected_count(self):
        assert expected_count(10_000, 10, 4) == pytest.approx(1.0)

    def test_cube_count_std(self):
        p = 0.01
        assert cube_count_std(1000, 10, 2) == pytest.approx(
            math.sqrt(1000 * p * (1 - p))
        )

    def test_vectorized_matches_scalar(self):
        counts = np.array([0, 1, 5, 50])
        vec = sparsity_coefficients(counts, 1000, 10, 2)
        for c, v in zip(counts, vec, strict=True):
            assert v == pytest.approx(sparsity_coefficient(int(c), 1000, 10, 2))

    def test_vectorized_rejects_bad_counts(self):
        with pytest.raises(ValidationError):
            sparsity_coefficients(np.array([-1]), 100, 10, 2)
        with pytest.raises(ValidationError):
            sparsity_coefficients(np.array([101]), 100, 10, 2)


class TestSignificance:
    def test_normal_tail_at_minus_three(self):
        # The paper's "-3 => 99.9% level of significance" reference point.
        assert normal_tail_probability(-3.0) == pytest.approx(0.00135, abs=1e-4)

    def test_normal_tail_symmetry(self):
        assert normal_tail_probability(0.0) == pytest.approx(0.5)
        assert normal_tail_probability(2.0) + normal_tail_probability(
            -2.0
        ) == pytest.approx(1.0)

    def test_significance_negative_coefficient(self):
        assert significance_of_coefficient(-3.0) == pytest.approx(0.99865, abs=1e-4)

    def test_significance_zero_for_dense_cubes(self):
        assert significance_of_coefficient(0.0) == 0.0
        assert significance_of_coefficient(2.5) == 0.0

    def test_binomial_tail_exact_small_case(self):
        # N=4, phi=2, k=1 -> p=0.5; P(X <= 1) = (1 + 4) / 16.
        assert binomial_tail_probability(1, 4, 2, 1) == pytest.approx(5 / 16)

    def test_binomial_approaches_normal_for_large_n(self):
        n_points, phi, k = 100_000, 10, 2
        count = 900  # expectation 1000, std ~31.5
        coeff = sparsity_coefficient(count, n_points, phi, k)
        exact = binomial_tail_probability(count, n_points, phi, k)
        approx = normal_tail_probability(coeff)
        assert exact == pytest.approx(approx, rel=0.2)

    def test_binomial_validates(self):
        with pytest.raises(ValidationError):
            binomial_tail_probability(5, 4, 2, 1)


@settings(max_examples=60)
@given(coefficient=st.floats(-10, 10, allow_nan=False))
def test_property_normal_tail_monotone(coefficient):
    assert normal_tail_probability(coefficient) <= normal_tail_probability(
        coefficient + 0.5
    )
