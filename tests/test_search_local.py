"""Tests for the §2.1 alternative searchers (random / hill climbing / SA)."""

import pytest

from repro.engine.events import InMemoryEventSink
from repro.exceptions import ValidationError
from repro.run.cancel import CancelToken
from repro.search.evolutionary.population import FitnessEvaluator
from repro.search.brute_force import BruteForceSearch
from repro.search.local import (
    HillClimbingSearch,
    RandomSearch,
    SimulatedAnnealingSearch,
    _neighbor,
)
from repro.search.evolutionary.encoding import Solution, random_solution

import numpy as np


ALL_SEARCHERS = [RandomSearch, HillClimbingSearch, SimulatedAnnealingSearch]


class TestNeighborMove:
    def test_preserves_dimensionality(self):
        rng = np.random.default_rng(0)
        s = random_solution(8, 3, 5, rng)
        for _ in range(100):
            s = _neighbor(s, 5, rng)
            assert s.dimensionality == 3

    def test_k_equals_d_still_moves(self):
        rng = np.random.default_rng(1)
        s = Solution([0, 1, 2])
        moved = sum(_neighbor(s, 4, rng) != s for _ in range(50))
        assert moved > 0

    def test_genes_stay_in_range(self):
        rng = np.random.default_rng(2)
        s = random_solution(6, 2, 3, rng)
        for _ in range(100):
            s = _neighbor(s, 3, rng)
            assert all(g == -1 or 0 <= g < 3 for g in s.genes)


@pytest.mark.parametrize("searcher_cls", ALL_SEARCHERS)
class TestCommonBehaviour:
    def test_returns_k_dimensional_projections(self, small_counter, searcher_cls):
        outcome = searcher_cls(
            small_counter, 2, 10, max_evaluations=500, random_state=0
        ).run()
        assert outcome.projections
        assert all(p.dimensionality == 2 for p in outcome.projections)

    def test_never_beats_brute_force(self, small_counter, searcher_cls):
        brute = BruteForceSearch(small_counter, 2, n_projections=1).run()
        outcome = searcher_cls(
            small_counter, 2, 1, max_evaluations=2000, random_state=0
        ).run()
        assert outcome.best_coefficient >= brute.best_coefficient - 1e-12

    def test_deterministic(self, small_counter, searcher_cls):
        run = lambda: searcher_cls(
            small_counter, 2, 5, max_evaluations=300, random_state=42
        ).run()
        a, b = run(), run()
        assert [p.subspace for p in a.projections] == [
            p.subspace for p in b.projections
        ]

    def test_respects_evaluation_budget(self, small_counter, searcher_cls):
        outcome = searcher_cls(
            small_counter, 2, 5, max_evaluations=100, random_state=0
        ).run()
        assert outcome.stats["evaluations"] <= 110

    def test_k_exceeds_dims_rejected(self, small_counter, searcher_cls):
        with pytest.raises(ValidationError):
            searcher_cls(small_counter, 99)

    def test_rejects_non_counter(self, searcher_cls):
        with pytest.raises(ValidationError):
            searcher_cls("counter", 2)


class TestTokenRestoration:
    """Regression: the counter's token/sink binding must survive exceptions.

    The searchers install their cancel token (and event sink) on the
    shared counter for the duration of a run; an exception escaping
    mid-search used to leave the token behind, poisoning the next run
    on the same counter.
    """

    def test_binding_restored_when_evaluation_raises(
        self, small_counter, monkeypatch
    ):
        previous_token = CancelToken()
        previous_sink = InMemoryEventSink()
        small_counter.set_cancel_token(previous_token)
        small_counter.set_event_sink(previous_sink)

        calls = {"n": 0}
        original = FitnessEvaluator.score

        def flaky_score(self, solution):
            calls["n"] += 1
            if calls["n"] > 3:
                raise RuntimeError("evaluator died mid-search")
            return original(self, solution)

        monkeypatch.setattr(FitnessEvaluator, "score", flaky_score)
        search = HillClimbingSearch(
            small_counter, 2, 5, max_evaluations=500, random_state=0
        )
        with pytest.raises(RuntimeError, match="mid-search"):
            search.run()
        assert small_counter.cancel_token is previous_token
        assert small_counter.event_sink is previous_sink

    def test_binding_restored_when_batch_scoring_raises(
        self, small_counter, monkeypatch
    ):
        small_counter.set_cancel_token(None)
        small_counter.set_event_sink(None)

        def boom(self, solutions):
            raise RuntimeError("batch scorer died")

        monkeypatch.setattr(FitnessEvaluator, "score_batch", boom)
        token = CancelToken()
        search = RandomSearch(
            small_counter, 2, 5, max_evaluations=600,
            random_state=0, cancel_token=token,
        )
        with pytest.raises(RuntimeError, match="batch scorer"):
            search.run()
        assert small_counter.cancel_token is None
        assert small_counter.event_sink is None

    def test_binding_restored_when_run_abandoned(self, small_counter):
        """finalize() before exhaustion closes the generator → restore."""
        from repro.engine.context import RunContext

        token = CancelToken()
        search = SimulatedAnnealingSearch(
            small_counter, 2, 5, max_evaluations=500,
            random_state=0, cancel_token=token,
        )
        context = RunContext(counter=small_counter)
        search.prepare(context)
        assert search.step(context)
        assert small_counter.cancel_token is token
        outcome = search.finalize(context)
        assert small_counter.cancel_token is None
        assert outcome.stopped_reason == "cancelled"


class TestHillClimbing:
    def test_restarts_counted(self, small_counter):
        outcome = HillClimbingSearch(
            small_counter, 2, 5, max_evaluations=2000, patience=10, random_state=0
        ).run()
        assert outcome.stats["restarts"] > 0

    def test_finds_optimum_on_small_problem(self, small_counter):
        brute = BruteForceSearch(small_counter, 1, n_projections=1).run()
        outcome = HillClimbingSearch(
            small_counter, 1, 1, max_evaluations=2000, random_state=0
        ).run()
        assert outcome.best_coefficient == pytest.approx(brute.best_coefficient)


class TestSimulatedAnnealing:
    def test_temperature_decays(self, small_counter):
        outcome = SimulatedAnnealingSearch(
            small_counter,
            2,
            5,
            max_evaluations=500,
            initial_temperature=1.0,
            cooling=0.99,
            random_state=0,
        ).run()
        assert outcome.stats["final_temperature"] < 1.0

    def test_accepts_worse_moves_when_hot(self, small_counter):
        outcome = SimulatedAnnealingSearch(
            small_counter,
            2,
            5,
            max_evaluations=1000,
            initial_temperature=10.0,
            cooling=0.9999,
            random_state=0,
        ).run()
        assert outcome.stats["accepted_worse"] > 0

    def test_invalid_cooling(self, small_counter):
        with pytest.raises(ValidationError):
            SimulatedAnnealingSearch(small_counter, 2, cooling=1.5)
