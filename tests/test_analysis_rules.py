"""Per-rule fixtures for the repro-lint rule set (RPL001-RPL009).

Every rule gets at least one positive fixture (the invariant broken →
exactly the expected code fires) and one negative fixture (compliant
code → silence), exercised through the same ``lint_source`` path the
CLI uses so scope tracking, allowlists and import-alias resolution are
all covered.
"""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.config import LintConfig
from repro.analysis.runner import lint_source, select_rules
from repro.analysis.sources import ModuleSource


def lint_text(
    text: str,
    *,
    path: str = "repro/sample.py",
    select: list[str] | None = None,
    config: LintConfig | None = None,
):
    source = textwrap.dedent(text)
    module = ModuleSource(path=path, text=source, tree=ast.parse(source))
    rules = select_rules(select=select)
    found, _ = lint_source(module, rules, config or LintConfig())
    return found


def codes(violations) -> list[str]:
    return [v.code for v in violations]


class TestRPL001UnseededRng:
    def test_flags_module_level_numpy_random(self):
        found = lint_text(
            """
            import numpy as np
            x = np.random.rand(10)
            """,
            select=["RPL001"],
        )
        assert codes(found) == ["RPL001"]
        assert "numpy.random.rand" in found[0].message

    def test_flags_unseeded_default_rng(self):
        found = lint_text(
            """
            import numpy as np
            rng = np.random.default_rng()
            """,
            select=["RPL001"],
        )
        assert codes(found) == ["RPL001"]
        assert "unseeded" in found[0].message

    def test_seeded_default_rng_is_clean(self):
        found = lint_text(
            """
            import numpy as np
            rng = np.random.default_rng(42)
            """,
            select=["RPL001"],
        )
        assert found == []

    def test_flags_stdlib_random_calls_and_imports(self):
        found = lint_text(
            """
            import random
            from random import shuffle
            value = random.random()
            """,
            select=["RPL001"],
        )
        assert codes(found) == ["RPL001", "RPL001"]

    def test_respects_import_alias(self):
        found = lint_text(
            """
            import numpy.random as nr
            nr.normal(0, 1)
            """,
            select=["RPL001"],
        )
        assert codes(found) == ["RPL001"]

    def test_allowlisted_module_is_exempt(self):
        config = LintConfig(rng_allowed_modules=("repro/sample.py",))
        found = lint_text(
            """
            import numpy as np
            x = np.random.rand(10)
            """,
            select=["RPL001"],
            config=config,
        )
        assert found == []

    def test_qualname_tracks_enclosing_scope(self):
        found = lint_text(
            """
            import numpy as np

            class Sampler:
                def draw(self):
                    return np.random.rand()
            """,
            select=["RPL001"],
        )
        assert found[0].qualname == "Sampler.draw"


class TestRPL002WallClock:
    def test_flags_time_calls(self):
        found = lint_text(
            """
            import time
            t = time.perf_counter()
            """,
            select=["RPL002"],
        )
        assert codes(found) == ["RPL002"]

    def test_flags_from_import_and_datetime_now(self):
        found = lint_text(
            """
            from time import monotonic
            from datetime import datetime
            a = monotonic()
            b = datetime.now()
            """,
            select=["RPL002"],
        )
        assert codes(found) == ["RPL002", "RPL002"]

    def test_budget_module_is_exempt(self):
        found = lint_text(
            """
            import time
            t = time.perf_counter()
            """,
            path="repro/run/controller.py",
            select=["RPL002"],
        )
        assert found == []

    def test_unrelated_attribute_named_time_is_clean(self):
        found = lint_text(
            """
            class Budget:
                def time(self):
                    return 0.0

            b = Budget()
            b.time()
            """,
            select=["RPL002"],
        )
        assert found == []


class TestRPL003NonAtomicWrite:
    def test_flags_builtin_open_write_mode(self):
        found = lint_text(
            """
            with open("out.json", "w") as fh:
                fh.write("{}")
            """,
            select=["RPL003"],
        )
        assert codes(found) == ["RPL003"]

    def test_flags_path_open_write_mode_first_positional(self):
        found = lint_text(
            """
            from pathlib import Path
            with Path("out.json").open("w", encoding="utf-8") as fh:
                fh.write("{}")
            """,
            select=["RPL003"],
        )
        assert codes(found) == ["RPL003"]

    def test_flags_write_text_and_json_dump(self):
        found = lint_text(
            """
            import json
            from pathlib import Path
            Path("out.txt").write_text("data")
            json.dump({}, object())
            """,
            select=["RPL003"],
        )
        assert codes(found) == ["RPL003", "RPL003"]

    def test_read_mode_and_default_mode_are_clean(self):
        found = lint_text(
            """
            from pathlib import Path
            with open("in.json") as fh:
                fh.read()
            with Path("in.json").open("rb") as fh:
                fh.read()
            """,
            select=["RPL003"],
        )
        assert found == []

    def test_non_literal_mode_is_flagged(self):
        found = lint_text(
            """
            def touch(path, mode):
                return open(path, mode)
            """,
            select=["RPL003"],
        )
        assert codes(found) == ["RPL003"]
        assert "non-literal" in found[0].message

    def test_atomic_module_is_exempt(self):
        found = lint_text(
            """
            with open("tmp", "w") as fh:
                fh.write("x")
            """,
            path="repro/_atomic.py",
            select=["RPL003"],
        )
        assert found == []


class TestRPL004RegistryOnly:
    def test_flags_engine_construction_in_core(self):
        found = lint_text(
            """
            from repro.search.brute_force import BruteForceSearch
            engine = BruteForceSearch(None, 4, 20)
            """,
            path="repro/core/detector.py",
            select=["RPL004"],
        )
        assert codes(found) == ["RPL004", "RPL004"]

    def test_registry_call_is_clean(self):
        found = lint_text(
            """
            from repro.engine import create_engine
            engine = create_engine("brute_force", None, 4, 20)
            """,
            path="repro/core/detector.py",
            select=["RPL004"],
        )
        assert found == []

    def test_rule_only_applies_to_core_and_cli(self):
        found = lint_text(
            """
            from repro.search.brute_force import BruteForceSearch
            engine = BruteForceSearch(None, 4, 20)
            """,
            path="repro/search/helpers.py",
            select=["RPL004"],
        )
        assert found == []


class TestRPL005RegisteredEvents:
    def test_flags_unregistered_event_type(self):
        found = lint_text(
            """
            def run(context):
                context.emit("totally_unknown_event", step=1)
            """,
            select=["RPL005"],
        )
        assert codes(found) == ["RPL005"]

    def test_registered_event_is_clean(self):
        from repro.engine.events import EVENT_TYPES

        event = sorted(EVENT_TYPES)[0]
        found = lint_text(
            f"""
            def run(context):
                context.emit({event!r}, step=1)
            """,
            select=["RPL005"],
        )
        assert found == []

    def test_locally_registered_event_is_clean(self):
        found = lint_text(
            """
            from repro.engine.events import register_event_type

            register_event_type("my_plugin_event")

            def run(context):
                context.emit("my_plugin_event", step=1)
            """,
            select=["RPL005"],
        )
        assert found == []

    def test_dynamic_event_name_is_not_flagged(self):
        # Syntactic rule: only literal event names are judged.
        found = lint_text(
            """
            def run(context, name):
                context.emit(name, step=1)
            """,
            select=["RPL005"],
        )
        assert found == []


class TestRPL006BareParallelism:
    def test_flags_multiprocessing_and_futures_imports(self):
        found = lint_text(
            """
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor
            """,
            select=["RPL006"],
        )
        assert codes(found) == ["RPL006", "RPL006"]

    def test_dispatcher_module_is_exempt(self):
        found = lint_text(
            """
            import multiprocessing
            """,
            path="repro/grid/parallel.py",
            select=["RPL006"],
        )
        assert found == []

    def test_similarly_named_module_is_clean(self):
        found = lint_text(
            """
            import concurrency_helpers
            """,
            select=["RPL006"],
        )
        assert found == []


class TestRPL007FloatEquality:
    def test_flags_float_literal_comparison_in_numeric_module(self):
        found = lint_text(
            """
            def check(x):
                return x == 0.5
            """,
            path="repro/sparsity/coefficient.py",
            select=["RPL007"],
        )
        assert codes(found) == ["RPL007"]

    def test_flags_nan_self_comparison(self):
        found = lint_text(
            """
            def is_valid(q):
                return q == q
            """,
            path="repro/eval/harness.py",
            select=["RPL007"],
        )
        assert codes(found) == ["RPL007"]
        assert "NaN probe" in found[0].message

    def test_integer_comparison_is_clean(self):
        found = lint_text(
            """
            def check(n):
                return n == 0
            """,
            path="repro/sparsity/coefficient.py",
            select=["RPL007"],
        )
        assert found == []

    def test_rule_scoped_to_numeric_modules(self):
        found = lint_text(
            """
            def check(x):
                return x == 0.5
            """,
            path="repro/data/loaders.py",
            select=["RPL007"],
        )
        assert found == []


class TestRPL008MutableDefaults:
    def test_flags_literal_and_constructor_defaults(self):
        found = lint_text(
            """
            def configure(options=[], table=dict()):
                return options, table
            """,
            select=["RPL008"],
        )
        assert codes(found) == ["RPL008", "RPL008"]

    def test_private_functions_are_exempt(self):
        found = lint_text(
            """
            def _internal(cache={}):
                return cache
            """,
            select=["RPL008"],
        )
        assert found == []

    def test_none_and_tuple_defaults_are_clean(self):
        found = lint_text(
            """
            def configure(options=None, shape=(2, 3)):
                return options, shape
            """,
            select=["RPL008"],
        )
        assert found == []

    def test_keyword_only_defaults_are_checked(self):
        found = lint_text(
            """
            def configure(*, extras={"a": 1}):
                return extras
            """,
            select=["RPL008"],
        )
        assert codes(found) == ["RPL008"]


class TestRPL009BroadExcept:
    def test_flags_broad_except_exception(self):
        found = lint_text(
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    return None
            """,
            select=["RPL009"],
        )
        assert codes(found) == ["RPL009"]
        assert "except Exception" in found[0].message

    def test_flags_bare_except(self):
        found = lint_text(
            """
            def load(path):
                try:
                    return path.read_text()
                except:
                    return None
            """,
            select=["RPL009"],
        )
        assert codes(found) == ["RPL009"]
        assert "bare" in found[0].message

    def test_flags_base_exception_in_tuple(self):
        found = lint_text(
            """
            def load(path):
                try:
                    return path.read_text()
                except (ValueError, BaseException):
                    return None
            """,
            select=["RPL009"],
        )
        assert codes(found) == ["RPL009"]

    def test_specific_exceptions_are_clean(self):
        found = lint_text(
            """
            def load(path):
                try:
                    return path.read_text()
                except (OSError, ValueError):
                    return None
            """,
            select=["RPL009"],
        )
        assert found == []

    def test_cleanup_and_reraise_is_exempt(self):
        found = lint_text(
            """
            import os

            def write(tmp):
                try:
                    tmp.flush()
                except BaseException:
                    os.unlink(tmp.name)
                    raise
            """,
            select=["RPL009"],
        )
        assert found == []

    def test_reraising_different_exception_still_flagged(self):
        found = lint_text(
            """
            def load(path):
                try:
                    return path.read_text()
                except Exception as exc:
                    raise RuntimeError("boom") from exc
            """,
            select=["RPL009"],
        )
        assert codes(found) == ["RPL009"]

    def test_resilience_layer_is_exempt(self):
        found = lint_text(
            """
            def guarded(primary, fallback):
                try:
                    return primary()
                except Exception:
                    return fallback()
            """,
            path="repro/resilience/ladder.py",
            select=["RPL009"],
        )
        assert found == []

    def test_dispatcher_module_is_exempt(self):
        found = lint_text(
            """
            def dispatch(task):
                try:
                    return task()
                except Exception:
                    return None
            """,
            path="repro/grid/parallel.py",
            select=["RPL009"],
        )
        assert found == []


# ----------------------------------------------------------------------
# project rules (RPL010-RPL014) — multi-file fixtures through lint_paths
# ----------------------------------------------------------------------
import pytest

from repro.analysis.runner import lint_paths

PROJECT_CODES = ["RPL010", "RPL011", "RPL012", "RPL013", "RPL014"]


def lint_tree(tmp_path, files: dict, *, select: list[str]):
    """Write ``files`` under a ``repro/`` tree and lint the whole tree."""
    for rel, text in files.items():
        target = tmp_path / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(text))
    return lint_paths([tmp_path], select=select)


class TestRPL010EventContract:
    def test_flags_emit_of_unregistered_type(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "engine/events.py": """
                EVENT_TYPES = {"run_started"}
                def emit_event(sink, type, **payload): ...
                """,
                "core/engine.py": """
                from repro.engine.events import emit_event
                def run(sink):
                    emit_event(sink, "run_started")
                    emit_event(sink, "made_up")
                """,
            },
            select=["RPL010"],
        )
        assert codes(result.violations) == ["RPL010"]
        assert "'made_up'" in result.violations[0].message
        assert "never registered" in result.violations[0].message

    def test_flags_registered_but_never_emitted(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "engine/events.py": """
                EVENT_TYPES = {"run_started", "dead_type"}
                def emit_event(sink, type, **payload): ...
                """,
                "core/engine.py": """
                from repro.engine.events import emit_event
                def run(sink):
                    emit_event(sink, "run_started")
                """,
            },
            select=["RPL010"],
        )
        assert codes(result.violations) == ["RPL010"]
        assert "'dead_type'" in result.violations[0].message
        assert "never emitted" in result.violations[0].message

    def test_clean_when_vocabulary_is_closed_both_ways(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "engine/events.py": """
                EVENT_TYPES = {"run_started"}
                def emit_event(sink, type, **payload): ...
                """,
                "core/engine.py": """
                from repro.engine.events import emit_event
                def run(sink):
                    emit_event(sink, "run_started")
                """,
            },
            select=["RPL010"],
        )
        assert result.violations == []

    def test_dynamic_emit_does_not_satisfy_registration(self, tmp_path):
        """An emit through a variable cannot prove a type live."""
        result = lint_tree(
            tmp_path,
            {
                "engine/events.py": """
                EVENT_TYPES = {"only_dynamic"}
                def emit_event(sink, type, **payload): ...
                """,
                "core/engine.py": """
                from repro.engine.events import emit_event
                def forward(sink, event_type):
                    emit_event(sink, event_type)
                """,
            },
            select=["RPL010"],
        )
        assert codes(result.violations) == ["RPL010"]
        assert "'only_dynamic'" in result.violations[0].message


class TestRPL011ExceptionContract:
    def test_flags_bare_raise_reachable_from_entry_point(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/api.py": """
                from repro.internal.helper import load
                def public_entry(path):
                    return load(path)
                """,
                "internal/helper.py": """
                def load(path):
                    raise ValueError("bad path")
                """,
            },
            select=["RPL011"],
        )
        assert codes(result.violations) == ["RPL011"]
        violation = result.violations[0]
        assert violation.path == "repro/internal/helper.py"
        assert "public_entry" in violation.message
        assert "ReproError" in violation.message

    def test_typed_raise_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "exceptions.py": """
                class ReproError(Exception): ...
                class ValidationError(ReproError, ValueError): ...
                """,
                "core/api.py": """
                from repro.exceptions import ValidationError
                def public_entry(value):
                    if value < 0:
                        raise ValidationError("negative")
                    return value
                """,
            },
            select=["RPL011"],
        )
        assert result.violations == []

    def test_unreachable_raise_is_not_flagged(self, tmp_path):
        """A bare raise in a module no entry point calls into is out of
        the contract's scope (nothing public can observe it)."""
        result = lint_tree(
            tmp_path,
            {
                "core/api.py": """
                def public_entry():
                    return 1
                """,
                "internal/orphan.py": """
                def never_called():
                    raise RuntimeError("unreachable")
                """,
            },
            select=["RPL011"],
        )
        assert result.violations == []

    def test_private_entry_module_functions_are_exempt(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/api.py": """
                def _private_helper():
                    raise ValueError("internal invariant")
                """,
            },
            select=["RPL011"],
        )
        assert result.violations == []

    def test_dataclass_post_init_is_reachable_via_constructor(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/api.py": """
                from repro.internal.spec import Spec
                def public_entry():
                    return Spec()
                """,
                "internal/spec.py": """
                from dataclasses import dataclass
                @dataclass
                class Spec:
                    limit: int = 1
                    def __post_init__(self):
                        if self.limit < 0:
                            raise ValueError("limit")
                """,
            },
            select=["RPL011"],
        )
        assert codes(result.violations) == ["RPL011"]
        assert result.violations[0].qualname == "Spec.__post_init__"


class TestRPL012ResourceLifecycle:
    def test_flags_unmanaged_memmap(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/loader.py": """
                import numpy as np
                def count(path):
                    view = np.memmap(path, dtype="u1", mode="r")
                    return int(view.sum())
                """,
            },
            select=["RPL012"],
        )
        assert codes(result.violations) == ["RPL012"]
        assert "numpy.memmap" in result.violations[0].message
        assert "never released" in result.violations[0].message

    def test_with_block_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/loader.py": """
                import tempfile
                def scratch():
                    with tempfile.TemporaryDirectory() as workdir:
                        return len(workdir)
                """,
            },
            select=["RPL012"],
        )
        assert result.violations == []

    def test_try_finally_close_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/loader.py": """
                import tempfile
                def scratch():
                    holder = tempfile.TemporaryDirectory()
                    try:
                        return len(holder.name)
                    finally:
                        holder.cleanup()
                """,
            },
            select=["RPL012"],
        )
        assert result.violations == []

    def test_unprotected_close_is_flagged(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/loader.py": """
                import tempfile
                def scratch(fn):
                    holder = tempfile.TemporaryDirectory()
                    value = fn(holder.name)
                    holder.cleanup()
                    return value
                """,
            },
            select=["RPL012"],
        )
        assert codes(result.violations) == ["RPL012"]
        assert "try/finally" in result.violations[0].message

    def test_registered_finalizer_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/loader.py": """
                import tempfile
                import weakref
                def scratch(owner):
                    holder = tempfile.TemporaryDirectory()
                    weakref.finalize(owner, holder, None)
                    return holder
                """,
            },
            select=["RPL012"],
        )
        assert result.violations == []

    def test_escaping_resource_is_callers_problem(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/loader.py": """
                import numpy as np
                def open_view(path):
                    view = np.memmap(path, dtype="u1", mode="r")
                    return view
                """,
            },
            select=["RPL012"],
        )
        assert result.violations == []


class TestRPL013RngTaint:
    def test_flags_explicit_none_seed(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/sampler.py": """
                import numpy as np
                def draw(n):
                    rng = np.random.default_rng(None)
                    return rng.random(n)
                """,
            },
            select=["RPL013"],
        )
        assert codes(result.violations) == ["RPL013"]
        assert "OS entropy" in result.violations[0].message

    def test_flags_opaque_seed_source(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/sampler.py": """
                import numpy as np
                def draw(n, data):
                    rng = np.random.default_rng(id(data))
                    return rng.random(n)
                """,
            },
            select=["RPL013"],
        )
        assert codes(result.violations) == ["RPL013"]
        assert "cannot be traced" in result.violations[0].message

    def test_seed_parameter_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/sampler.py": """
                import numpy as np
                def draw(n, seed):
                    rng = np.random.default_rng(seed)
                    return rng.random(n)
                """,
            },
            select=["RPL013"],
        )
        assert result.violations == []

    def test_integer_literal_and_derived_seed_are_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "core/sampler.py": """
                import numpy as np
                def draw(n, seed):
                    fixed = np.random.default_rng(12345)
                    shifted = np.random.default_rng(seed + 1)
                    return fixed.random(n) + shifted.random(n)
                """,
            },
            select=["RPL013"],
        )
        assert result.violations == []

    def test_zero_arg_constructor_is_rpl001_territory(self, tmp_path):
        """RPL013 leaves the no-argument case to the single-file rule."""
        result = lint_tree(
            tmp_path,
            {
                "core/sampler.py": """
                import numpy as np
                def draw(n):
                    rng = np.random.default_rng()
                    return rng.random(n)
                """,
            },
            select=["RPL013"],
        )
        assert result.violations == []


class TestRPL014RegistryConsistency:
    def test_flags_unregistered_fault_point(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "resilience/faults.py": """
                FAULT_POINTS = {"shard_read": "reads"}
                def maybe_inject(point, **detail): ...
                """,
                "grid/reader.py": """
                from repro.resilience.faults import maybe_inject
                def read(path):
                    maybe_inject("shard_raed")
                """,
            },
            select=["RPL014"],
        )
        assert codes(result.violations) == ["RPL014"]
        assert "'shard_raed'" in result.violations[0].message

    def test_registered_fault_point_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "resilience/faults.py": """
                FAULT_POINTS = {"shard_read": "reads"}
                def maybe_inject(point, **detail): ...
                """,
                "grid/reader.py": """
                from repro.resilience.faults import maybe_inject
                def read(path):
                    maybe_inject("shard_read")
                """,
            },
            select=["RPL014"],
        )
        assert result.violations == []

    def test_flags_unknown_backend_and_kernel_names(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "grid/backends.py": """
                def register_kernel(name, fn): ...
                def register_backend(spec): ...
                def get_backend(name): ...
                def resolve_kernel(name): ...
                register_kernel("numpy", sum)
                """,
                "cli.py": """
                from repro.grid.backends import get_backend, resolve_kernel
                def pick():
                    resolve_kernel("numpy")
                    get_backend("natve")
                """,
            },
            select=["RPL014"],
        )
        assert codes(result.violations) == ["RPL014"]
        assert "backend 'natve'" in result.violations[0].message

    def test_registered_but_unused_is_not_flagged(self, tmp_path):
        """Registries exist to serve names the core never mentions."""
        result = lint_tree(
            tmp_path,
            {
                "resilience/faults.py": """
                FAULT_POINTS = {"shard_read": "reads", "spare_point": "x"}
                def maybe_inject(point, **detail): ...
                """,
                "grid/reader.py": """
                from repro.resilience.faults import maybe_inject
                def read(path):
                    maybe_inject("shard_read")
                """,
            },
            select=["RPL014"],
        )
        assert result.violations == []


class TestProjectRulePragmas:
    def test_line_pragma_suppresses_project_rule(self, tmp_path):
        result = lint_tree(
            tmp_path,
            {
                "resilience/faults.py": """
                FAULT_POINTS = {"shard_read": "reads"}
                def maybe_inject(point, **detail): ...
                """,
                "grid/reader.py": """
                from repro.resilience.faults import maybe_inject
                def read(path):
                    maybe_inject("nope")  # repro-lint: disable=RPL014
                """,
            },
            select=["RPL014"],
        )
        assert result.violations == []
        assert result.suppressed == 1
