"""Tests for dataset export round-trips and multi-k mining."""

import numpy as np
import pytest

from repro import detect_across_dimensionalities
from repro.core.multik import MultiKResult
from repro.data.arff import load_arff
from repro.data.export import write_arff, write_csv
from repro.data.loaders import Dataset, load_csv
from repro.data.registry import load_dataset
from repro.exceptions import DatasetError, ValidationError


@pytest.fixture
def labelled(rng):
    values = rng.normal(size=(40, 3))
    values[3, 1] = np.nan
    return Dataset(
        name="toy",
        values=values,
        feature_names=("alpha", "beta w space", "gamma"),
        labels=np.array([1] * 30 + [2] * 10),
    )


class TestCsvRoundTrip:
    def test_values_and_labels_survive(self, labelled, tmp_path):
        path = write_csv(labelled, tmp_path / "toy.csv")
        back = load_csv(path, label_column="class")
        np.testing.assert_allclose(
            back.values, labelled.values, rtol=1e-9, equal_nan=True
        )
        np.testing.assert_array_equal(back.labels, labelled.labels)
        assert back.feature_names == labelled.feature_names

    def test_unlabelled(self, rng, tmp_path):
        dataset = Dataset(
            name="x", values=rng.normal(size=(5, 2)), feature_names=("a", "b")
        )
        back = load_csv(write_csv(dataset, tmp_path / "x.csv"))
        np.testing.assert_allclose(back.values, dataset.values, rtol=1e-9)
        assert back.labels is None

    def test_label_name_collision(self, labelled, tmp_path):
        with pytest.raises(DatasetError, match="collides"):
            write_csv(labelled, tmp_path / "t.csv", label_column="alpha")


class TestArffRoundTrip:
    def test_values_and_labels_survive(self, labelled, tmp_path):
        path = write_arff(labelled, tmp_path / "toy.arff")
        back = load_arff(path, label_attribute="class")
        np.testing.assert_allclose(
            back.values, labelled.values, rtol=1e-9, equal_nan=True
        )
        # Codes relabel order-preservingly: 1 -> 0, 2 -> 1.
        np.testing.assert_array_equal(back.labels, labelled.labels - 1)

    def test_quoted_names_survive(self, labelled, tmp_path):
        back = load_arff(write_arff(labelled, tmp_path / "t.arff"))
        assert "beta w space" in back.feature_names

    def test_builtin_dataset_exports(self, tmp_path):
        dataset = load_dataset("machine")
        back = load_csv(write_csv(dataset, tmp_path / "machine.csv"))
        assert back.n_points == dataset.n_points
        assert back.n_dims == dataset.n_dims


@pytest.fixture(scope="module")
def multik_data():
    rng = np.random.default_rng(4)
    latent = rng.normal(size=300)
    data = rng.normal(size=(300, 5))
    data[:, 0] = latent + rng.normal(scale=0.1, size=300)
    data[:, 1] = latent + rng.normal(scale=0.1, size=300)
    data[7, 0] = np.quantile(data[:, 0], 0.04)
    data[7, 1] = np.quantile(data[:, 1], 0.96)
    return data


KWARGS = dict(n_ranges=4, n_projections=6, method="brute_force")


class TestMultiK:
    def test_explicit_ks(self, multik_data):
        multi = detect_across_dimensionalities(
            multik_data, [1, 2], detector_kwargs=KWARGS
        )
        assert multi.dimensionalities == [1, 2]
        assert all(
            p.dimensionality == k
            for k in (1, 2)
            for p in multi.results[k].projections
        )

    def test_default_range_from_equation_two(self, multik_data):
        multi = detect_across_dimensionalities(
            multik_data, detector_kwargs=KWARGS
        )
        # N=300, phi=4, s=-3 -> k* = floor(log4(300/9+1)) = 2.
        assert multi.dimensionalities == [1, 2]

    def test_union_and_intersection(self, multik_data):
        multi = detect_across_dimensionalities(
            multik_data, [1, 2], detector_kwargs=KWARGS
        )
        union = set(multi.outlier_union().tolist())
        inter = set(multi.outlier_intersection().tolist())
        assert inter <= union
        for k in (1, 2):
            assert set(multi.results[k].outlier_indices.tolist()) <= union

    def test_planted_found_at_k2(self, multik_data):
        multi = detect_across_dimensionalities(
            multik_data, [1, 2], detector_kwargs=KWARGS
        )
        assert 2 in multi.flagging_dimensionalities(7)

    def test_summary_lines(self, multik_data):
        multi = detect_across_dimensionalities(
            multik_data, [1, 2], detector_kwargs=KWARGS
        )
        lines = multi.summary_lines()
        assert lines[0].startswith("k=1:")
        assert "union" in lines[-1]

    def test_dimensionality_in_kwargs_rejected(self, multik_data):
        with pytest.raises(ValidationError):
            detect_across_dimensionalities(
                multik_data, [1], detector_kwargs={"dimensionality": 2}
            )

    def test_duplicate_ks_deduped(self, multik_data):
        multi = detect_across_dimensionalities(
            multik_data, [2, 2, 1], detector_kwargs=KWARGS
        )
        assert multi.dimensionalities == [1, 2]

    def test_empty_ks_rejected(self, multik_data):
        with pytest.raises(ValidationError):
            detect_across_dimensionalities(multik_data, [], detector_kwargs=KWARGS)

    def test_result_container_validation(self):
        with pytest.raises(ValidationError):
            MultiKResult(results={})
