"""Tests for the chunked nearest-neighbor substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.neighbors import (
    kth_neighbor_distances,
    nearest_neighbors,
    neighbor_counts_within,
    pairwise_distance_chunks,
)
from repro.exceptions import ValidationError


def brute_distances(data, metric="euclidean"):
    n = len(data)
    out = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            diff = data[i] - data[j]
            if metric == "euclidean":
                out[i, j] = np.sqrt((diff**2).sum())
            else:
                out[i, j] = np.abs(diff).sum()
    np.fill_diagonal(out, np.inf)
    return out


class TestPairwiseChunks:
    @pytest.mark.parametrize("metric", ["euclidean", "manhattan"])
    @pytest.mark.parametrize("chunk_size", [1, 3, 100])
    def test_matches_brute_force(self, rng, metric, chunk_size):
        data = rng.normal(size=(17, 4))
        reference = brute_distances(data, metric)
        assembled = np.zeros_like(reference)
        for start, block in pairwise_distance_chunks(
            data, metric=metric, chunk_size=chunk_size
        ):
            assembled[start : start + block.shape[0]] = block
        np.testing.assert_allclose(assembled, reference, atol=1e-8)

    def test_self_distance_infinite(self, rng):
        data = rng.normal(size=(5, 2))
        for start, block in pairwise_distance_chunks(data, chunk_size=2):
            for i in range(block.shape[0]):
                assert block[i, start + i] == np.inf

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            list(pairwise_distance_chunks(np.array([[np.nan, 1.0], [0.0, 1.0]])))

    def test_unknown_metric(self, rng):
        with pytest.raises(ValidationError):
            list(pairwise_distance_chunks(rng.normal(size=(3, 2)), metric="cosine"))


class TestKthNeighborDistances:
    def test_k1_matches_brute(self, rng):
        data = rng.normal(size=(30, 3))
        got = kth_neighbor_distances(data, 1)
        want = brute_distances(data).min(axis=1)
        np.testing.assert_allclose(got, want)

    def test_k3_matches_brute(self, rng):
        data = rng.normal(size=(30, 3))
        got = kth_neighbor_distances(data, 3)
        want = np.sort(brute_distances(data), axis=1)[:, 2]
        np.testing.assert_allclose(got, want)

    def test_monotone_in_k(self, rng):
        data = rng.normal(size=(25, 3))
        d1 = kth_neighbor_distances(data, 1)
        d5 = kth_neighbor_distances(data, 5)
        assert (d5 >= d1).all()

    def test_k_too_large(self, rng):
        with pytest.raises(ValidationError):
            kth_neighbor_distances(rng.normal(size=(5, 2)), 5)

    def test_duplicates_zero_distance(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [5.0, 5.0]])
        distances = kth_neighbor_distances(data, 1)
        assert distances[0] == 0.0
        assert distances[1] == 0.0
        assert distances[2] > 0


class TestNearestNeighbors:
    def test_indices_and_distances_consistent(self, rng):
        data = rng.normal(size=(20, 3))
        indices, distances = nearest_neighbors(data, 4)
        reference = brute_distances(data)
        for i in range(20):
            np.testing.assert_allclose(
                distances[i], np.sort(reference[i])[:4], atol=1e-9
            )
            np.testing.assert_allclose(
                reference[i, indices[i]], distances[i], atol=1e-9
            )

    def test_sorted_ascending(self, rng):
        data = rng.normal(size=(15, 2))
        _, distances = nearest_neighbors(data, 5)
        assert (np.diff(distances, axis=1) >= 0).all()

    def test_never_self(self, rng):
        data = rng.normal(size=(10, 2))
        indices, _ = nearest_neighbors(data, 3)
        for i in range(10):
            assert i not in indices[i]


class TestNeighborCounts:
    def test_matches_brute(self, rng):
        data = rng.normal(size=(25, 3))
        radius = 1.5
        got = neighbor_counts_within(data, radius)
        want = (brute_distances(data) <= radius).sum(axis=1)
        np.testing.assert_array_equal(got, want)

    def test_radius_validation(self, rng):
        data = rng.normal(size=(5, 2))
        with pytest.raises(ValidationError):
            neighbor_counts_within(data, 0.0)
        with pytest.raises(ValidationError):
            neighbor_counts_within(data, -1.0)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(3, 40),
    d=st.integers(1, 6),
    chunk=st.integers(1, 50),
)
def test_property_chunking_invariant(seed, n, d, chunk):
    """Results are independent of the chunk size."""
    data = np.random.default_rng(seed).normal(size=(n, d))
    a = kth_neighbor_distances(data, 1, chunk_size=chunk)
    b = kth_neighbor_distances(data, 1, chunk_size=n + 10)
    np.testing.assert_allclose(a, b)
