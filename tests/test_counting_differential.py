"""Differential harness: every counting path must agree exactly.

Four independent implementations of n(D) are compared on randomized
small grids (N <= 200, d <= 6, phi <= 4), with and without missing
values:

1. a naive O(N*k) row scan (``naive_cube_count`` — the reference),
2. ``CubeCounter.count`` (boolean masks + memo),
3. ``PackedCubeCounter.count`` (uint8 bitsets + popcount),
4. ``count_batch`` on both counters (the vectorized prefix-sharing
   kernel), under the serial AND the process-pool backend.

Any divergence — on any enumerable cube, including empty and
degenerate ones — is a bug in one of the engines, so the assertions
are strict equality on integer counts.

The default run sweeps a handful of seeds; ``-m slow`` unlocks the
deep sweep (more seeds, exhaustive cube enumeration at higher k).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.params import CountingBackend
from repro.core.subspace import Subspace
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import CellAssignment
from repro.grid.packed_counter import PackedCubeCounter

from conftest import naive_cube_count

PROCESS_BACKEND = CountingBackend(kind="process", n_workers=2, chunk_size=16)


def random_cells(rng, n_points, n_dims, n_ranges, missing=0.0) -> CellAssignment:
    """A random grid assignment, bypassing the discretizer.

    Codes are drawn uniformly; a *missing* fraction of entries becomes
    the missing sentinel (-1), exercising the mask-stack handling of
    incomplete rows.
    """
    codes = rng.integers(0, n_ranges, size=(n_points, n_dims), dtype=np.int16)
    if missing:
        codes[rng.random(codes.shape) < missing] = -1
    return CellAssignment(codes=codes, n_ranges=n_ranges)


def all_cubes(n_dims, n_ranges, max_k):
    """Every cube of dimensionality 1..max_k, lexicographic order."""
    for k in range(1, max_k + 1):
        for dims in itertools.combinations(range(n_dims), k):
            for rngs in itertools.product(range(n_ranges), repeat=k):
                yield Subspace(dims, rngs)


def _check_grid(cells, max_k, backend=None):
    """Assert all four implementations agree on every cube of the grid."""
    cubes = list(all_cubes(cells.n_dims, cells.n_ranges, max_k))
    expected = [naive_cube_count(cells.codes, cube) for cube in cubes]
    dense = CubeCounter(cells, backend=backend)
    packed = PackedCubeCounter(cells, backend=backend)
    try:
        for cube, want in zip(cubes, expected, strict=True):
            assert dense.count(cube) == want, cube
            assert packed.count(cube) == want, cube
        # Fresh counters for the batch path so the memo cannot mask a
        # broken kernel by answering from per-cube results.
        dense_b = CubeCounter(cells, backend=backend)
        packed_b = PackedCubeCounter(cells, backend=backend)
        try:
            assert dense_b.count_batch(cubes).tolist() == expected
            assert packed_b.count_batch(cubes).tolist() == expected
        finally:
            dense_b.close()
            packed_b.close()
    finally:
        dense.close()
        packed.close()


class TestSerialDifferential:
    """All engines vs the naive reference, serial backend."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_grids(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 7))
        phi = int(rng.integers(2, 5))
        _check_grid(random_cells(rng, n, d, phi), max_k=min(3, d))

    @pytest.mark.parametrize("seed", [3, 4])
    def test_random_grids_with_missing(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 6))
        phi = int(rng.integers(2, 5))
        _check_grid(
            random_cells(rng, n, d, phi, missing=0.2), max_k=min(3, d)
        )

    def test_sparse_grid_with_empty_cubes(self):
        # phi^k >> N guarantees many cubes count zero — the branch where
        # require_nonempty pruning and popcount-of-nothing must agree.
        rng = np.random.default_rng(99)
        _check_grid(random_cells(rng, 25, 4, 4), max_k=3)

    def test_tiny_grid_exhaustive(self):
        # Small enough to enumerate every cube at full depth k = d.
        rng = np.random.default_rng(7)
        _check_grid(random_cells(rng, 50, 3, 3), max_k=3)

    def test_batch_order_and_duplicates(self, rng):
        cells = random_cells(rng, 120, 5, 3)
        cubes = list(all_cubes(5, 3, 2))
        shuffled = [cubes[i] for i in rng.permutation(len(cubes))]
        with_dups = shuffled + shuffled[:10] + [Subspace((), ())]
        counter = CubeCounter(cells)
        try:
            got = counter.count_batch(with_dups).tolist()
        finally:
            counter.close()
        expected = [naive_cube_count(cells.codes, c) for c in with_dups]
        assert got == expected


class TestProcessDifferential:
    """The process-pool backend must be count-identical to serial."""

    def test_process_backend_matches(self):
        rng = np.random.default_rng(11)
        _check_grid(random_cells(rng, 150, 5, 3), max_k=3,
                    backend=PROCESS_BACKEND)

    def test_process_backend_missing_values(self):
        rng = np.random.default_rng(12)
        _check_grid(random_cells(rng, 90, 4, 4, missing=0.15), max_k=3,
                    backend=PROCESS_BACKEND)

    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_worker_count_is_irrelevant(self, n_workers):
        rng = np.random.default_rng(13)
        cells = random_cells(rng, 100, 4, 3)
        cubes = list(all_cubes(4, 3, 3))
        serial = CubeCounter(cells)
        parallel = CubeCounter(
            cells,
            backend=CountingBackend(
                kind="process", n_workers=n_workers, chunk_size=8
            ),
        )
        try:
            assert (
                parallel.count_batch(cubes).tolist()
                == serial.count_batch(cubes).tolist()
            )
        finally:
            serial.close()
            parallel.close()


@pytest.mark.slow
class TestDeepSweep:
    """Exhaustive multi-seed sweep (run with ``-m slow``)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_many_random_grids(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 7))
        phi = int(rng.integers(2, 5))
        missing = float(rng.choice([0.0, 0.1, 0.3]))
        _check_grid(random_cells(rng, n, d, phi, missing), max_k=min(4, d))

    @pytest.mark.parametrize("seed", range(3))
    def test_process_backend_deep(self, seed):
        rng = np.random.default_rng(2000 + seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 6))
        phi = int(rng.integers(2, 5))
        _check_grid(
            random_cells(rng, n, d, phi, missing=0.1),
            max_k=min(4, d),
            backend=PROCESS_BACKEND,
        )
