"""Differential harness: every counting path must agree exactly.

Four independent implementations of n(D) are compared on randomized
small grids (N <= 200, d <= 6, phi <= 4), with and without missing
values:

1. a naive O(N*k) row scan (``naive_cube_count`` — the reference),
2. ``CubeCounter.count`` (boolean masks + memo),
3. ``PackedCubeCounter.count`` (uint8 bitsets + popcount),
4. ``count_batch`` on both counters (the vectorized prefix-sharing
   kernel), under EVERY registered counting backend.

Any divergence — on any enumerable cube, including empty and
degenerate ones — is a bug in one of the engines, so the assertions
are strict equality on integer counts.

The conformance classes parametrize over the backend registry
(``repro.grid.backends``), so a newly registered backend is swept
automatically; the native backend is additionally pinned to each of
its kernel tiers (compiled and the pure-numpy fallback that runs when
neither numba nor a C compiler is available), and the pool-wrapped
native backend is exercised under ``FaultPlan`` chaos.

The default run sweeps a handful of seeds; ``-m slow`` unlocks the
deep sweep (more seeds, exhaustive cube enumeration at higher k).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.params import CountingBackend, FaultPlan
from repro.core.subspace import Subspace
from repro.grid.backends import registered_backends
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import CellAssignment
from repro.grid.native import available_tiers, forced_tier
from repro.grid.packed_counter import PackedCubeCounter

from conftest import naive_cube_count

PROCESS_BACKEND = CountingBackend(kind="process", n_workers=2, chunk_size=16)


def conformance_backend(kind: str) -> CountingBackend | None:
    """A small-but-real backend config for the conformance sweep."""
    if kind == "serial":
        return None  # the default path most of the suite runs under
    if kind in ("process", "process-native"):
        return CountingBackend(kind=kind, n_workers=2, chunk_size=16)
    return CountingBackend(kind=kind)


def random_cells(rng, n_points, n_dims, n_ranges, missing=0.0) -> CellAssignment:
    """A random grid assignment, bypassing the discretizer.

    Codes are drawn uniformly; a *missing* fraction of entries becomes
    the missing sentinel (-1), exercising the mask-stack handling of
    incomplete rows.
    """
    codes = rng.integers(0, n_ranges, size=(n_points, n_dims), dtype=np.int16)
    if missing:
        codes[rng.random(codes.shape) < missing] = -1
    return CellAssignment(codes=codes, n_ranges=n_ranges)


def all_cubes(n_dims, n_ranges, max_k):
    """Every cube of dimensionality 1..max_k, lexicographic order."""
    for k in range(1, max_k + 1):
        for dims in itertools.combinations(range(n_dims), k):
            for rngs in itertools.product(range(n_ranges), repeat=k):
                yield Subspace(dims, rngs)


def _check_grid(cells, max_k, backend=None):
    """Assert all four implementations agree on every cube of the grid."""
    cubes = list(all_cubes(cells.n_dims, cells.n_ranges, max_k))
    expected = [naive_cube_count(cells.codes, cube) for cube in cubes]
    dense = CubeCounter(cells, backend=backend)
    packed = PackedCubeCounter(cells, backend=backend)
    try:
        for cube, want in zip(cubes, expected, strict=True):
            assert dense.count(cube) == want, cube
            assert packed.count(cube) == want, cube
        # Fresh counters for the batch path so the memo cannot mask a
        # broken kernel by answering from per-cube results.
        dense_b = CubeCounter(cells, backend=backend)
        packed_b = PackedCubeCounter(cells, backend=backend)
        try:
            assert dense_b.count_batch(cubes).tolist() == expected
            assert packed_b.count_batch(cubes).tolist() == expected
        finally:
            dense_b.close()
            packed_b.close()
    finally:
        dense.close()
        packed.close()


class TestSerialDifferential:
    """All engines vs the naive reference, serial backend."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_grids(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 7))
        phi = int(rng.integers(2, 5))
        _check_grid(random_cells(rng, n, d, phi), max_k=min(3, d))

    @pytest.mark.parametrize("seed", [3, 4])
    def test_random_grids_with_missing(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 6))
        phi = int(rng.integers(2, 5))
        _check_grid(
            random_cells(rng, n, d, phi, missing=0.2), max_k=min(3, d)
        )

    def test_sparse_grid_with_empty_cubes(self):
        # phi^k >> N guarantees many cubes count zero — the branch where
        # require_nonempty pruning and popcount-of-nothing must agree.
        rng = np.random.default_rng(99)
        _check_grid(random_cells(rng, 25, 4, 4), max_k=3)

    def test_tiny_grid_exhaustive(self):
        # Small enough to enumerate every cube at full depth k = d.
        rng = np.random.default_rng(7)
        _check_grid(random_cells(rng, 50, 3, 3), max_k=3)

    def test_batch_order_and_duplicates(self, rng):
        cells = random_cells(rng, 120, 5, 3)
        cubes = list(all_cubes(5, 3, 2))
        shuffled = [cubes[i] for i in rng.permutation(len(cubes))]
        with_dups = shuffled + shuffled[:10] + [Subspace((), ())]
        counter = CubeCounter(cells)
        try:
            got = counter.count_batch(with_dups).tolist()
        finally:
            counter.close()
        expected = [naive_cube_count(cells.codes, c) for c in with_dups]
        assert got == expected


class TestProcessDifferential:
    """The process-pool backend must be count-identical to serial."""

    def test_process_backend_matches(self):
        rng = np.random.default_rng(11)
        _check_grid(random_cells(rng, 150, 5, 3), max_k=3,
                    backend=PROCESS_BACKEND)

    def test_process_backend_missing_values(self):
        rng = np.random.default_rng(12)
        _check_grid(random_cells(rng, 90, 4, 4, missing=0.15), max_k=3,
                    backend=PROCESS_BACKEND)

    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    def test_worker_count_is_irrelevant(self, n_workers):
        rng = np.random.default_rng(13)
        cells = random_cells(rng, 100, 4, 3)
        cubes = list(all_cubes(4, 3, 3))
        serial = CubeCounter(cells)
        parallel = CubeCounter(
            cells,
            backend=CountingBackend(
                kind="process", n_workers=n_workers, chunk_size=8
            ),
        )
        try:
            assert (
                parallel.count_batch(cubes).tolist()
                == serial.count_batch(cubes).tolist()
            )
        finally:
            serial.close()
            parallel.close()


class TestBackendConformance:
    """Every registered backend must be count-identical to the naive
    reference — on the same grids, including missing values.  New
    backends join this sweep just by registering."""

    @pytest.mark.parametrize("kind", registered_backends())
    def test_backend_matches_reference(self, kind):
        rng = np.random.default_rng(21)
        _check_grid(
            random_cells(rng, 140, 4, 3),
            max_k=3,
            backend=conformance_backend(kind),
        )

    @pytest.mark.parametrize("kind", registered_backends())
    def test_backend_matches_with_missing(self, kind):
        rng = np.random.default_rng(22)
        _check_grid(
            random_cells(rng, 110, 4, 4, missing=0.2),
            max_k=3,
            backend=conformance_backend(kind),
        )

    @pytest.mark.parametrize("tier", available_tiers())
    def test_native_every_tier(self, tier):
        # Pin each kernel tier explicitly — in particular 'numpy', the
        # fallback taken when numba and a C compiler are both absent.
        rng = np.random.default_rng(23)
        with forced_tier(tier):
            _check_grid(
                random_cells(rng, 130, 4, 3, missing=0.1),
                max_k=3,
                backend=CountingBackend(kind="native"),
            )

    def test_native_fallback_without_numba(self):
        # The no-numba story: force the pure-numpy tier (always
        # available) and demand exact agreement.
        rng = np.random.default_rng(24)
        with forced_tier("numpy"):
            _check_grid(
                random_cells(rng, 90, 4, 4),
                max_k=3,
                backend=CountingBackend(kind="native"),
            )

    @pytest.mark.parametrize(
        "fault",
        [
            FaultPlan(kill_worker_on_chunk=1, trigger_limit=1),
            FaultPlan(fail_shm_attach_once=True),
        ],
        ids=["kill-worker", "shm-attach-fail"],
    )
    def test_pool_wrapped_native_under_chaos(self, fault):
        # The native kernel inside pool workers must survive worker
        # death and shm-attach failures without corrupting a count.
        rng = np.random.default_rng(25)
        cells = random_cells(rng, 120, 4, 3, missing=0.1)
        cubes = list(all_cubes(4, 3, 3))
        expected = [naive_cube_count(cells.codes, c) for c in cubes]
        counter = PackedCubeCounter(
            cells,
            backend=CountingBackend(
                kind="process-native",
                n_workers=2,
                chunk_size=8,
                fault_plan=fault,
            ),
        )
        try:
            assert counter.count_batch(cubes).tolist() == expected
        finally:
            counter.close()


@pytest.mark.slow
class TestDeepSweep:
    """Exhaustive multi-seed sweep (run with ``-m slow``)."""

    @pytest.mark.parametrize("seed", range(10))
    def test_many_random_grids(self, seed):
        rng = np.random.default_rng(1000 + seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 7))
        phi = int(rng.integers(2, 5))
        missing = float(rng.choice([0.0, 0.1, 0.3]))
        _check_grid(random_cells(rng, n, d, phi, missing), max_k=min(4, d))

    @pytest.mark.parametrize("seed", range(3))
    def test_process_backend_deep(self, seed):
        rng = np.random.default_rng(2000 + seed)
        n = int(rng.integers(20, 201))
        d = int(rng.integers(2, 6))
        phi = int(rng.integers(2, 5))
        _check_grid(
            random_cells(rng, n, d, phi, missing=0.1),
            max_k=min(4, d),
            backend=PROCESS_BACKEND,
        )
