"""Tests for the extension features: deviation baseline, GA history,
multiple-testing statistics, and the new CLI subcommands."""

import json

import numpy as np
import pytest

from repro.baselines.deviation import SequentialDeviationDetector
from repro.cli import main
from repro.exceptions import ValidationError
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch
from repro.search.outcome import GenerationRecord
from repro.sparsity.statistics import (
    bonferroni_significance,
    expected_abnormal_cubes,
    normal_tail_probability,
    significance_of_coefficient,
)


class TestSequentialDeviation:
    def test_finds_global_deviant(self, rng):
        data = rng.normal(size=(100, 3))
        data = np.vstack([data, [[20.0, 20.0, 20.0]]])
        result = SequentialDeviationDetector(
            n_outliers=1, random_state=0
        ).detect(data)
        assert result.outlier_indices[0] == 100

    def test_scores_nonnegative(self, rng):
        data = rng.normal(size=(50, 4))
        scores = SequentialDeviationDetector(random_state=0).scores(data)
        assert (scores >= -1e-9).all()

    def test_deterministic_with_seed(self, rng):
        data = rng.normal(size=(60, 3))
        a = SequentialDeviationDetector(random_state=5).scores(data)
        b = SequentialDeviationDetector(random_state=5).scores(data)
        np.testing.assert_allclose(a, b)

    def test_shuffle_averaging_reduces_order_noise(self, rng):
        data = rng.normal(size=(80, 3))
        data[11] += 8.0
        many = SequentialDeviationDetector(
            n_outliers=1, n_shuffles=20, random_state=0
        ).detect(data)
        assert many.outlier_indices[0] == 11

    def test_standardize_handles_scale(self, rng):
        # One attribute with huge units must not dominate by default.
        data = rng.normal(size=(100, 2))
        data[:, 0] *= 1e6
        data[23, 1] += 10.0  # the real deviant, in the small-unit attr
        result = SequentialDeviationDetector(
            n_outliers=1, n_shuffles=10, random_state=0
        ).detect(data)
        assert result.outlier_indices[0] == 23

    def test_flagged_sorted(self, rng):
        data = rng.normal(size=(60, 3))
        result = SequentialDeviationDetector(
            n_outliers=10, random_state=0
        ).detect(data)
        flagged = result.scores[result.outlier_indices]
        assert (np.diff(flagged) <= 0).all()

    def test_too_many_outliers(self, rng):
        with pytest.raises(ValidationError):
            SequentialDeviationDetector(n_outliers=99).detect(
                rng.normal(size=(5, 2))
            )

    def test_misses_subspace_anomaly(self, rng):
        # The contrast the paper draws: a subspace-local anomaly with
        # marginally normal coordinates is invisible to a full-dim
        # variance-based deviation scan with many noise dims.
        n = 400
        latent = rng.normal(size=n)
        data = rng.normal(size=(n, 40))
        data[:, 0] = latent + rng.normal(scale=0.1, size=n)
        data[:, 1] = latent + rng.normal(scale=0.1, size=n)
        data[42, 0] = np.quantile(data[:, 0], 0.05)
        data[42, 1] = np.quantile(data[:, 1], 0.95)
        result = SequentialDeviationDetector(
            n_outliers=5, n_shuffles=5, random_state=0
        ).detect(data)
        assert 42 not in result.outlier_indices


class TestHistoryTracking:
    def test_history_collected_when_enabled(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=20, max_generations=10, track_history=True
            ),
            random_state=0,
        ).run()
        assert outcome.history
        assert isinstance(outcome.history[0], GenerationRecord)
        # One record per generation including generation 0.
        assert outcome.history[0].generation == 0
        assert len(outcome.history) == outcome.stats["generations"] + 1

    def test_history_empty_by_default(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(population_size=20, max_generations=5),
            random_state=0,
        ).run()
        assert outcome.history == ()

    def test_best_coefficient_monotone(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=24, max_generations=30, track_history=True
            ),
            random_state=1,
        ).run()
        best = [r.best_coefficient for r in outcome.history]
        assert all(b <= a + 1e-12 for a, b in zip(best, best[1:], strict=False))

    def test_restarts_recorded(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=20,
                max_generations=5,
                restarts=3,
                track_history=True,
            ),
            random_state=0,
        ).run()
        assert {r.restart for r in outcome.history} == {0, 1, 2}

    def test_convergence_statistic_in_unit_interval(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=20, max_generations=10, track_history=True
            ),
            random_state=2,
        ).run()
        for record in outcome.history:
            assert 0.0 < record.convergence <= 1.0
            assert 0 <= record.n_feasible <= 20


class TestMultipleTesting:
    def test_expected_abnormal_cubes(self):
        # 1e6 cubes at -3: expect ~1350 by chance.
        expected = expected_abnormal_cubes(1_000_000, -3.0)
        assert expected == pytest.approx(1_000_000 * normal_tail_probability(-3.0))
        assert 1000 < expected < 2000

    def test_bonferroni_reduces_significance(self):
        raw = significance_of_coefficient(-5.0)
        corrected = bonferroni_significance(-5.0, 1_000)
        assert corrected < raw
        assert corrected > 0

    def test_bonferroni_saturates(self):
        # -3 over a musk-size search space is expected by chance.
        assert bonferroni_significance(-3.0, 10_000_000) == 0.0

    def test_bonferroni_single_test_equals_raw(self):
        assert bonferroni_significance(-4.0, 1) == pytest.approx(
            significance_of_coefficient(-4.0)
        )

    def test_positive_coefficient_zero(self):
        assert bonferroni_significance(1.0, 100) == 0.0


class TestCliExtensions:
    def test_detect_json_output(self, capsys):
        code = main(
            [
                "detect",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["format_version"] == 1
        assert payload["projections"]

    def test_save_then_score(self, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        code = main(
            [
                "detect",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--save",
                str(model_path),
            ]
        )
        assert code == 0
        assert model_path.exists()
        capsys.readouterr()
        code = main(
            ["score", "--dataset", "machine", "--model", str(model_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "points covered" in out
        assert "score -" in out

    def test_score_missing_model_graceful(self, capsys):
        code = main(
            ["score", "--dataset", "machine", "--model", "/nonexistent.json"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_json_output(self, capsys):
        code = main(
            [
                "explain",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--point",
                "0",
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["point_index"] == 0
        assert "projections" in payload

    def test_experiment_housing(self, capsys):
        code = main(["experiment", "housing"])
        assert code == 0
        out = capsys.readouterr().out
        assert "recall" in out
        assert "CRIM" in out


class TestLogging:
    def test_detector_logs_summary(self, rng, caplog):
        import logging

        from repro import SubspaceOutlierDetector

        data = rng.normal(size=(80, 4))
        with caplog.at_level(logging.INFO, logger="repro.core.detector"):
            SubspaceOutlierDetector(
                dimensionality=2, n_ranges=3, n_projections=5,
                method="brute_force",
            ).detect(data)
        messages = " ".join(record.message for record in caplog.records)
        assert "detect:" in messages
        assert "detect done:" in messages

    def test_brute_force_budget_warning(self, rng, caplog):
        import logging

        from repro.grid.counter import CubeCounter
        from repro.grid.discretizer import EquiDepthDiscretizer
        from repro.search.brute_force import BruteForceSearch

        data = rng.normal(size=(100, 8))
        counter = CubeCounter(EquiDepthDiscretizer(4).fit_transform(data))
        with caplog.at_level(logging.WARNING, logger="repro.search.brute_force"):
            BruteForceSearch(counter, 3, 5, max_evaluations=10).run()
        assert any(
            "stopped early" in r.message and "evaluation_cap" in r.message
            for r in caplog.records
        )


class TestPackedDetector:
    def test_packed_equals_dense(self, rng):
        data = rng.normal(size=(150, 6))
        kwargs = dict(
            dimensionality=2, n_ranges=4, n_projections=8, method="brute_force"
        )
        from repro import SubspaceOutlierDetector

        dense = SubspaceOutlierDetector(**kwargs).detect(data)
        packed = SubspaceOutlierDetector(packed=True, **kwargs).detect(data)
        assert [p.subspace for p in dense.projections] == [
            p.subspace for p in packed.projections
        ]
        np.testing.assert_array_equal(
            dense.outlier_indices, packed.outlier_indices
        )
