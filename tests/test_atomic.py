"""Failure-path tests for the shared atomic-write helpers.

The determinism contract (docs/determinism.md, RPL003) routes every
persisted artifact through ``repro._atomic``; these tests pin down the
crash-safety properties that make that worthwhile: an interrupted or
failing write must never corrupt an existing target, and must never
leave temp-file litter behind.
"""

from __future__ import annotations

import errno
import json
import os

import pytest

from repro._atomic import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)
from repro.exceptions import ReproError, ResourceError
from repro.resilience import FaultSpec, fault_injection


def _no_temp_litter(directory):
    return [p.name for p in directory.iterdir() if p.suffix == ".tmp"]


class TestAtomicWriter:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_writer(target) as handle:
            handle.write("hello\n")
        assert target.read_text() == "hello\n"
        assert _no_temp_litter(tmp_path) == []

    def test_body_exception_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("partial garbage")
                raise RuntimeError("killed mid-write")
        assert target.read_text() == "original"
        assert _no_temp_litter(tmp_path) == []

    def test_body_exception_without_existing_target(self, tmp_path):
        target = tmp_path / "fresh.txt"
        with pytest.raises(ValueError):
            with atomic_writer(target) as handle:
                handle.write("doomed")
                raise ValueError("boom")
        assert not target.exists()
        assert _no_temp_litter(tmp_path) == []

    def test_replace_failure_cleans_temp_and_keeps_target(
        self, tmp_path, monkeypatch
    ):
        target = tmp_path / "out.txt"
        target.write_text("original")

        def failing_replace(src, dst):
            raise OSError("disk detached")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError, match="disk detached"):
            atomic_write_text(target, "replacement")
        monkeypatch.undo()
        assert target.read_text() == "original"
        assert _no_temp_litter(tmp_path) == []

    def test_keyboard_interrupt_is_not_swallowed(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(KeyboardInterrupt):
            with atomic_writer(target) as handle:
                handle.write("partial")
                raise KeyboardInterrupt
        assert target.read_text() == "original"
        assert _no_temp_litter(tmp_path) == []


class TestAtomicWriteText:
    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "data.txt"
        target.write_text("old")
        returned = atomic_write_text(target, "new")
        assert returned == target
        assert target.read_text() == "new"

    def test_accepts_str_path(self, tmp_path):
        target = tmp_path / "str_path.txt"
        atomic_write_text(str(target), "content")
        assert target.read_text() == "content"


class TestAtomicWriteJson:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "payload.json"
        atomic_write_json(target, {"a": 1, "b": [2, 3]})
        assert json.loads(target.read_text()) == {"a": 1, "b": [2, 3]}

    def test_unserializable_payload_never_touches_target(self, tmp_path):
        """Encoding happens before any file operation (RPL003 rationale)."""
        target = tmp_path / "payload.json"
        target.write_text('{"keep": true}')
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": object()})
        assert json.loads(target.read_text()) == {"keep": True}
        assert _no_temp_litter(tmp_path) == []

    def test_unserializable_payload_creates_nothing(self, tmp_path):
        target = tmp_path / "never.json"
        with pytest.raises(TypeError):
            atomic_write_json(target, {"bad": {1, 2}})
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []


class TestDiskFull:
    """ENOSPC surfaces as a typed, actionable ResourceError."""

    def test_injected_disk_full_raises_resource_error(self, tmp_path):
        target = tmp_path / "out.txt"
        with fault_injection(FaultSpec("atomic_write")):
            with pytest.raises(ResourceError) as excinfo:
                atomic_write_text(target, "doomed")
        message = str(excinfo.value)
        assert "disk full" in message
        assert str(target) in message
        assert not target.exists()
        assert _no_temp_litter(tmp_path) == []

    def test_resource_error_is_both_repro_and_os_error(self, tmp_path):
        with fault_injection(FaultSpec("atomic_write")):
            with pytest.raises(ReproError):
                atomic_write_bytes(tmp_path / "a.bin", b"x")
        with fault_injection(FaultSpec("atomic_write")):
            with pytest.raises(OSError) as excinfo:
                atomic_write_bytes(tmp_path / "a.bin", b"x")
        assert excinfo.value.errno == errno.ENOSPC

    def test_disk_full_keeps_existing_target(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with fault_injection(FaultSpec("atomic_write")):
            with pytest.raises(ResourceError):
                atomic_write_text(target, "replacement")
        assert target.read_text() == "original"
        assert _no_temp_litter(tmp_path) == []

    def test_real_enospc_from_os_layer_is_wrapped(self, tmp_path, monkeypatch):
        def failing_replace(src, dst):
            raise OSError(errno.ENOSPC, "No space left on device")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(ResourceError, match="disk full"):
            atomic_write_text(tmp_path / "out.txt", "data")

    def test_unrelated_oserror_is_not_wrapped(self, tmp_path, monkeypatch):
        def failing_replace(src, dst):
            raise OSError(errno.EACCES, "Permission denied")

        monkeypatch.setattr(os, "replace", failing_replace)
        with pytest.raises(OSError) as excinfo:
            atomic_write_text(tmp_path / "out.txt", "data")
        assert not isinstance(excinfo.value, ResourceError)
