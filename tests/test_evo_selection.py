"""Tests for the selection operators (Figure 4 + ablation variants)."""

import numpy as np
import pytest

from repro.search.evolutionary.encoding import Solution, WILDCARD_GENE
from repro.search.evolutionary.selection import (
    FitnessProportionalSelection,
    RankRouletteSelection,
    TournamentSelection,
    UniformSelection,
    _ranks_most_negative_first,
)


def solutions_with_fitness(fitnesses):
    """Distinct solutions, one per fitness value."""
    return [
        Solution([i] + [WILDCARD_GENE] * 3) for i in range(len(fitnesses))
    ], list(fitnesses)


class TestRanks:
    def test_most_negative_gets_rank_one(self):
        ranks = _ranks_most_negative_first([-1.0, -5.0, 0.0])
        np.testing.assert_array_equal(ranks, [2, 1, 3])

    def test_ties_stable(self):
        ranks = _ranks_most_negative_first([-1.0, -1.0])
        np.testing.assert_array_equal(ranks, [1, 2])

    def test_infeasible_ranked_last(self):
        ranks = _ranks_most_negative_first([float("inf"), -2.0])
        np.testing.assert_array_equal(ranks, [2, 1])


class TestRankRoulette:
    def test_preserves_population_size(self):
        sols, fits = solutions_with_fitness([-3.0, -2.0, -1.0, 0.0])
        out = RankRouletteSelection().select(sols, fits, np.random.default_rng(0))
        assert len(out) == 4

    def test_worst_never_selected(self):
        # Weight p - r(i) gives the worst-ranked solution weight zero.
        sols, fits = solutions_with_fitness([-3.0, -2.0, -1.0, 5.0])
        rng = np.random.default_rng(0)
        for _ in range(20):
            out = RankRouletteSelection().select(sols, fits, rng)
            assert sols[3] not in out

    def test_bias_toward_fitter(self):
        sols, fits = solutions_with_fitness([-10.0, -1.0, 0.0, 1.0])
        rng = np.random.default_rng(42)
        counts = {i: 0 for i in range(4)}
        for _ in range(200):
            for s in RankRouletteSelection().select(sols, fits, rng):
                counts[sols.index(s)] += 1
        assert counts[0] > counts[1] > counts[2]

    def test_single_solution_passthrough(self):
        sols, fits = solutions_with_fitness([-1.0])
        out = RankRouletteSelection().select(sols, fits, np.random.default_rng(0))
        assert out == sols

    def test_deterministic_given_seed(self):
        sols, fits = solutions_with_fitness([-3.0, -2.0, -1.0, 0.0])
        a = RankRouletteSelection().select(sols, fits, np.random.default_rng(5))
        b = RankRouletteSelection().select(sols, fits, np.random.default_rng(5))
        assert a == b


class TestTournament:
    def test_size_validated(self):
        with pytest.raises(Exception):
            TournamentSelection(size=1)

    def test_bias_toward_fitter(self):
        sols, fits = solutions_with_fitness([-5.0, 0.0, 5.0, 10.0])
        rng = np.random.default_rng(1)
        selected = TournamentSelection(size=3).select(sols, fits, rng)
        best_share = sum(1 for s in selected if s == sols[0]) / len(selected)
        assert best_share > 0.25

    def test_preserves_size(self):
        sols, fits = solutions_with_fitness([-1.0, -2.0, -3.0])
        out = TournamentSelection().select(sols, fits, np.random.default_rng(0))
        assert len(out) == 3


class TestFitnessProportional:
    def test_handles_infeasible(self):
        sols, fits = solutions_with_fitness([float("inf"), -1.0, -2.0])
        out = FitnessProportionalSelection().select(
            sols, fits, np.random.default_rng(0)
        )
        assert len(out) == 3
        assert sols[0] not in out  # zero weight for infeasible

    def test_all_infeasible_uniform_fallback(self):
        sols, fits = solutions_with_fitness([float("inf")] * 3)
        out = FitnessProportionalSelection().select(
            sols, fits, np.random.default_rng(0)
        )
        assert len(out) == 3

    def test_all_tied_uniform_among_finite(self):
        sols, fits = solutions_with_fitness([-1.0, -1.0, -1.0])
        out = FitnessProportionalSelection().select(
            sols, fits, np.random.default_rng(0)
        )
        assert len(out) == 3


class TestUniform:
    def test_no_pressure(self):
        sols, fits = solutions_with_fitness([-9.0, 0.0])
        rng = np.random.default_rng(0)
        counts = {0: 0, 1: 0}
        for _ in range(500):
            for s in UniformSelection().select(sols, fits, rng):
                counts[sols.index(s)] += 1
        ratio = counts[0] / (counts[0] + counts[1])
        assert 0.4 < ratio < 0.6
