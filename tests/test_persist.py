"""Tests for persistence: JSON round-trips and saved models."""

import json

import numpy as np
import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.core.results import ScoredProjection
from repro.core.subspace import Subspace
from repro.exceptions import NotFittedError, ValidationError
from repro.persist import (
    SavedModel,
    load_model,
    projection_from_dict,
    projection_to_dict,
    result_from_dict,
    result_to_dict,
    save_model,
    subspace_from_dict,
    subspace_to_dict,
)


@pytest.fixture
def fitted(rng):
    n = 300
    latent = rng.normal(size=n)
    data = rng.normal(size=(n, 6))
    data[:, 0] = latent + rng.normal(scale=0.1, size=n)
    data[:, 1] = latent + rng.normal(scale=0.1, size=n)
    data[7, 0] = np.quantile(data[:, 0], 0.05)
    data[7, 1] = np.quantile(data[:, 1], 0.95)
    detector = SubspaceOutlierDetector(
        dimensionality=2, n_ranges=5, n_projections=10, method="brute_force"
    )
    result = detector.detect(data, feature_names=[f"f{i}" for i in range(6)])
    return detector, result, data


class TestSubspaceRoundTrip:
    def test_roundtrip(self):
        cube = Subspace((1, 4), (0, 3))
        assert subspace_from_dict(subspace_to_dict(cube)) == cube

    def test_json_serializable(self):
        payload = subspace_to_dict(Subspace((0,), (2,)))
        assert json.loads(json.dumps(payload)) == payload

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            subspace_from_dict({"dims": [0]})


class TestProjectionRoundTrip:
    def test_roundtrip(self):
        projection = ScoredProjection(Subspace((0, 2), (1, 1)), 3, -2.75)
        restored = projection_from_dict(projection_to_dict(projection))
        assert restored == projection

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            projection_from_dict({"count": 1})


class TestResultRoundTrip:
    def test_roundtrip_preserves_everything(self, fitted):
        _, result, _ = fitted
        restored = result_from_dict(result_to_dict(result))
        assert restored.projections == result.projections
        np.testing.assert_array_equal(
            restored.outlier_indices, result.outlier_indices
        )
        assert restored.coverage == {
            int(k): tuple(v) for k, v in result.coverage.items()
        }
        assert restored.dimensionality == result.dimensionality

    def test_json_round_trip(self, fitted):
        _, result, _ = fitted
        text = json.dumps(result_to_dict(result))
        restored = result_from_dict(json.loads(text))
        assert restored.n_outliers == result.n_outliers

    def test_point_scores_survive(self, fitted):
        _, result, _ = fitted
        restored = result_from_dict(result_to_dict(result))
        for point in result.outlier_indices[:5]:
            assert restored.point_score(int(point)) == result.point_score(
                int(point)
            )


class TestLifecycleFieldsRoundTrip:
    """The PR-3 lifecycle fields must survive the JSON round trip."""

    def test_stopped_reason_survives(self, fitted):
        _, result, _ = fitted
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored.stats["stopped_reason"] == result.stats["stopped_reason"]
        assert restored.stopped_reason == result.stopped_reason
        assert restored.stats["completed"] == result.stats["completed"]

    def test_backend_health_and_degraded_flag_survive(self, fitted):
        _, result, _ = fitted
        restored = result_from_dict(result_to_dict(result))
        assert restored.backend_health == result.backend_health
        assert restored.backend_degraded == result.backend_degraded

    def test_degraded_run_round_trips_true(self, fitted):
        _, result, _ = fitted
        payload = result_to_dict(result)
        payload["stats"]["backend_health"] = {
            "retries": 2, "timeouts": 1, "rebuilds": 1,
            "fallbacks": 3, "pool_degraded": True,
        }
        restored = result_from_dict(json.loads(json.dumps(payload)))
        assert restored.backend_degraded is True
        assert restored.backend_health["fallbacks"] == 3

    def test_event_counters_survive(self, fitted):
        _, result, _ = fitted
        assert "events" in result.stats  # stats-assembly sink ran
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored.stats["events"] == result.stats["events"]


class TestTraceSinkConfiguration:
    """A detector configured with an event sink still persists cleanly."""

    @pytest.fixture
    def traced(self, rng, tmp_path):
        from repro.engine.events import InMemoryEventSink

        data = rng.normal(size=(150, 5))
        sink = InMemoryEventSink()
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=4,
            n_projections=5,
            method="brute_force",
            event_sink=sink,
            random_state=0,
        )
        result = detector.detect(data)
        return detector, result, data, sink

    def test_sink_received_events(self, traced):
        _, result, _, sink = traced
        assert len(sink) > 0
        assert sink.of_type("engine_finished")
        # The sink sees the same event tally the stats record keeps.
        assert result.stats["events"]["engine_finished"] == len(
            sink.of_type("engine_finished")
        )

    def test_model_round_trip_unaffected_by_sink(self, traced, tmp_path):
        detector, _, data, _ = traced
        model = load_model(save_model(detector, tmp_path / "traced.json"))
        np.testing.assert_allclose(
            model.score(data), detector.score(data), equal_nan=True
        )

    def test_result_round_trip_with_sink_stats(self, traced):
        _, result, _, _ = traced
        restored = result_from_dict(json.loads(json.dumps(result_to_dict(result))))
        assert restored.stats["events"] == result.stats["events"]
        assert restored.stopped_reason == result.stopped_reason


class TestDetectorScorePredict:
    def test_score_matches_result_scores(self, fitted):
        detector, result, data = fitted
        scores = detector.score(data)
        for point in result.outlier_indices:
            assert scores[point] == pytest.approx(result.point_score(int(point)))

    def test_uncovered_points_nan(self, fitted):
        detector, result, data = fitted
        scores = detector.score(data)
        uncovered = ~result.outlier_mask()
        assert np.isnan(scores[uncovered]).all()

    def test_predict_mask(self, fitted):
        detector, result, data = fitted
        np.testing.assert_array_equal(
            detector.predict(data), result.outlier_mask()
        )

    def test_new_data_scored(self, fitted, rng):
        detector, _, data = fitted
        new = rng.normal(size=(50, data.shape[1]))
        scores = detector.score(new)
        assert scores.shape == (50,)

    def test_score_before_detect_raises(self):
        detector = SubspaceOutlierDetector(dimensionality=2)
        with pytest.raises(NotFittedError):
            detector.score(np.zeros((3, 2)))


class TestSavedModel:
    def test_save_load_score_identical(self, fitted, tmp_path):
        detector, _, data = fitted
        path = save_model(detector, tmp_path / "model.json")
        model = load_model(path)
        np.testing.assert_allclose(
            model.score(data), detector.score(data), equal_nan=True
        )

    def test_predict_identical(self, fitted, tmp_path):
        detector, _, data = fitted
        model = load_model(save_model(detector, tmp_path / "m.json"))
        np.testing.assert_array_equal(model.predict(data), detector.predict(data))

    def test_feature_names_preserved(self, fitted, tmp_path):
        detector, _, _ = fitted
        model = load_model(save_model(detector, tmp_path / "m.json"))
        assert model.feature_names == detector.cells_.feature_names

    def test_save_unfitted_raises(self, tmp_path):
        detector = SubspaceOutlierDetector(dimensionality=2)
        with pytest.raises(NotFittedError):
            save_model(detector, tmp_path / "m.json")

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ValidationError, match="not found"):
            load_model(tmp_path / "nope.json")

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="JSON"):
            load_model(path)

    def test_load_malformed_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"n_ranges": 5}))
        with pytest.raises(ValidationError, match="malformed"):
            load_model(path)

    def test_dict_roundtrip(self, fitted, tmp_path):
        detector, _, _ = fitted
        model = load_model(save_model(detector, tmp_path / "m.json"))
        again = SavedModel.from_dict(model.to_dict())
        assert again.projections == model.projections
        assert again.n_ranges == model.n_ranges

    def test_future_format_version_rejected(self, fitted, tmp_path):
        detector, _, _ = fitted
        model = load_model(save_model(detector, tmp_path / "m.json"))
        payload = model.to_dict()
        payload["format_version"] = 999
        with pytest.raises(ValidationError, match="format version"):
            SavedModel.from_dict(payload)

    def test_future_result_version_rejected(self, fitted):
        _, result, _ = fitted
        payload = result_to_dict(result)
        payload["format_version"] = 999
        with pytest.raises(ValidationError, match="format version"):
            result_from_dict(payload)

    def test_missing_version_defaults_to_one(self, fitted):
        _, result, _ = fitted
        payload = result_to_dict(result)
        del payload["format_version"]
        assert result_from_dict(payload).n_outliers == result.n_outliers
