"""Failure injection: degenerate inputs across the whole pipeline."""

import numpy as np
import pytest

from repro import (
    EvolutionaryConfig,
    SubspaceOutlierDetector,
    ValidationError,
)
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.search.brute_force import BruteForceSearch
from repro.search.evolutionary.engine import EvolutionarySearch


QUICK = EvolutionaryConfig(population_size=10, max_generations=5)


class TestDegenerateData:
    def test_constant_dataset(self):
        # Every value identical: all points share one cell; brute force
        # reports the single (dense) cube per dimension pair, none sparse.
        data = np.ones((50, 4))
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        result = detector.detect(data)
        assert all(p.coefficient >= 0 for p in result.projections)

    def test_two_points(self):
        data = np.array([[0.0, 1.0], [1.0, 0.0]])
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=2, n_projections=2, method="brute_force"
        )
        result = detector.detect(data)
        assert result.n_points == 2

    def test_single_column(self, rng):
        data = rng.normal(size=(100, 1))
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=4, n_projections=3, method="brute_force"
        )
        result = detector.detect(data)
        assert all(p.dimensionality == 1 for p in result.projections)

    def test_n_smaller_than_phi(self):
        data = np.arange(6.0).reshape(3, 2)
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=10, n_projections=2, method="brute_force"
        )
        result = detector.detect(data)
        assert result.n_points == 3

    def test_duplicate_rows_everywhere(self):
        data = np.tile([1.0, 2.0, 3.0], (40, 1))
        data[0] = [9.0, -9.0, 9.0]
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        result = detector.detect(data)
        # The single distinct row is the only candidate for sparse cells.
        assert result.n_outliers <= 1 or 0 in result.outlier_indices

    def test_mostly_missing(self, rng):
        data = rng.normal(size=(80, 5))
        data[rng.random(data.shape) < 0.7] = np.nan
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        result = detector.detect(data)
        assert result.n_points == 80

    def test_entirely_missing_column(self, rng):
        data = rng.normal(size=(60, 3))
        data[:, 1] = np.nan
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        result = detector.detect(data)
        # No mined projection can use the all-missing dimension.
        for p in result.projections:
            assert 1 not in p.subspace.dims

    def test_k_equals_d(self, rng):
        data = rng.normal(size=(200, 3))
        detector = SubspaceOutlierDetector(
            dimensionality=3, n_ranges=3, n_projections=5, method="brute_force"
        )
        result = detector.detect(data)
        assert all(p.dimensionality == 3 for p in result.projections)

    def test_ga_with_k_equals_d(self, rng):
        data = rng.normal(size=(150, 3))
        detector = SubspaceOutlierDetector(
            dimensionality=3,
            n_ranges=3,
            n_projections=5,
            config=QUICK,
            random_state=0,
        )
        result = detector.detect(data)
        assert all(p.dimensionality == 3 for p in result.projections)

    def test_empty_data_rejected(self):
        detector = SubspaceOutlierDetector(dimensionality=1, config=QUICK)
        with pytest.raises(ValidationError):
            detector.detect(np.empty((0, 3)))

    def test_inf_rejected(self):
        detector = SubspaceOutlierDetector(dimensionality=1, config=QUICK)
        with pytest.raises(ValidationError):
            detector.detect([[np.inf, 1.0], [0.0, 1.0]])


class TestTinyPopulations:
    def test_population_of_two(self, rng):
        data = rng.normal(size=(60, 4))
        cells = EquiDepthDiscretizer(3).fit_transform(data)
        outcome = EvolutionarySearch(
            CubeCounter(cells),
            2,
            3,
            config=EvolutionaryConfig(population_size=2, max_generations=10),
            random_state=0,
        ).run()
        assert outcome.projections

    def test_projections_fewer_than_requested(self, rng):
        # Fewer distinct non-empty cubes than m: the best set just
        # returns what exists.
        data = np.tile([0.0, 1.0], (20, 1))
        cells = EquiDepthDiscretizer(2).fit_transform(data)
        outcome = BruteForceSearch(
            CubeCounter(cells), 1, n_projections=50
        ).run()
        assert 0 < len(outcome.projections) <= 4


class TestScoreEdgeCases:
    def test_score_on_out_of_range_values(self, rng):
        data = rng.normal(size=(100, 4))
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        detector.detect(data)
        wild = np.full((3, 4), 1e9)
        scores = detector.score(wild)  # clamps to edge ranges, no crash
        assert scores.shape == (3,)

    def test_score_with_missing_values(self, rng):
        data = rng.normal(size=(100, 4))
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        detector.detect(data)
        new = data[:5].copy()
        new[:, 0] = np.nan
        scores = detector.score(new)
        # Points missing a mined dimension are simply not covered there.
        assert scores.shape == (5,)

    def test_score_wrong_width_rejected(self, rng):
        data = rng.normal(size=(50, 4))
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=3, n_projections=5, method="brute_force"
        )
        detector.detect(data)
        with pytest.raises(Exception):
            detector.score(rng.normal(size=(5, 3)))
