"""Tests for Equation 2 and the parameter advisor (§2.4)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.params import (
    ParameterAdvisor,
    choose_projection_dimensionality,
    empty_cube_sparsity,
    expected_cube_count,
)
from repro.exceptions import ValidationError
from repro.sparsity.coefficient import sparsity_coefficient


class TestEmptyCubeSparsity:
    def test_closed_form_matches_equation_one(self):
        for n_points, phi, k in [(10_000, 10, 3), (452, 5, 2), (351, 3, 3)]:
            assert empty_cube_sparsity(n_points, phi, k) == pytest.approx(
                sparsity_coefficient(0, n_points, phi, k)
            )

    def test_more_negative_for_larger_n(self):
        assert empty_cube_sparsity(10_000, 10, 3) < empty_cube_sparsity(1_000, 10, 3)

    def test_less_negative_for_larger_k(self):
        # Higher dimensionality -> empty cubes are expected -> less signal.
        assert empty_cube_sparsity(10_000, 10, 3) < empty_cube_sparsity(10_000, 10, 4)

    def test_phi_one_rejected(self):
        with pytest.raises(ValidationError):
            empty_cube_sparsity(100, 1, 2)


class TestEquationTwo:
    def test_paper_scale_example(self):
        # N=10,000, phi=10, s=-3: k* = floor(log10(10000/9 + 1)) = 3.
        assert choose_projection_dimensionality(10_000, 10, -3.0) == 3

    def test_formula_verbatim(self):
        for n_points, phi, s in [(699, 4, -3.0), (452, 5, -3.0), (2310, 4, -3.0)]:
            expected = max(1, math.floor(math.log(n_points / s**2 + 1.0, phi)))
            assert choose_projection_dimensionality(n_points, phi, s) == expected

    def test_at_least_one(self):
        assert choose_projection_dimensionality(10, 10, -3.0) == 1

    def test_empty_cube_at_k_star_at_least_as_significant_as_target(self):
        # §2.4: rounding makes the effective sparsity *more* negative
        # than the chosen s.
        for n_points, phi in [(699, 4), (452, 5), (2310, 4), (10_000, 10)]:
            k_star = choose_projection_dimensionality(n_points, phi, -3.0)
            assert empty_cube_sparsity(n_points, phi, k_star) <= -3.0

    def test_monotone_in_n(self):
        ks = [
            choose_projection_dimensionality(n, 5, -3.0)
            for n in (100, 1_000, 10_000, 100_000)
        ]
        assert ks == sorted(ks)

    def test_zero_target_rejected(self):
        with pytest.raises(ValidationError):
            choose_projection_dimensionality(100, 10, 0.0)

    def test_positive_target_rejected(self):
        with pytest.raises(ValidationError):
            choose_projection_dimensionality(100, 10, 3.0)

    @given(
        n_points=st.integers(10, 10**6),
        phi=st.integers(2, 20),
        s=st.floats(-10.0, -0.5),
    )
    def test_property_k_star_maximal(self, n_points, phi, s):
        """k* is the largest k whose empty cube reaches the target s."""
        k_star = choose_projection_dimensionality(n_points, phi, s)
        assert (
            empty_cube_sparsity(n_points, phi, k_star) <= s
            or k_star == 1  # clamped floor
        )
        # k*+1 must fail the target.
        assert empty_cube_sparsity(n_points, phi, k_star + 1) > s


class TestExpectedCubeCount:
    def test_value(self):
        assert expected_cube_count(10_000, 10, 4) == pytest.approx(1.0)

    def test_decreasing_in_k(self):
        assert expected_cube_count(1000, 5, 3) < expected_cube_count(1000, 5, 2)


class TestAdvisor:
    def test_recommended_k(self):
        advisor = ParameterAdvisor(n_points=10_000, n_ranges=10)
        assert advisor.recommended_k() == 3

    def test_feasible_dimensionalities(self):
        advisor = ParameterAdvisor(n_points=10_000, n_ranges=10)
        assert advisor.feasible_dimensionalities() == [1, 2, 3]

    def test_summary_mentions_key_numbers(self):
        advisor = ParameterAdvisor(n_points=452, n_ranges=5)
        text = advisor.summary()
        assert "452" in text
        assert "k*=" in text

    def test_invalid_target(self):
        with pytest.raises(ValidationError):
            ParameterAdvisor(n_points=100, n_ranges=5, target_sparsity=0.0)
