"""Tests for the crossover operators (Figure 5)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.search.evolutionary.crossover import (
    OptimizedCrossover,
    TwoPointCrossover,
    pair_population,
)
from repro.search.evolutionary.encoding import (
    Solution,
    WILDCARD_GENE,
    random_solution,
    seed_population,
)
from repro.search.evolutionary.population import FitnessEvaluator


@pytest.fixture
def evaluator(small_cells):
    return FitnessEvaluator(CubeCounter(small_cells), dimensionality=2)


@pytest.fixture
def evaluator3(small_cells):
    return FitnessEvaluator(CubeCounter(small_cells), dimensionality=3)


class TestPairing:
    def test_all_paired_even(self):
        sols = seed_population(6, 2, 3, 8, random_state=0)
        pairs = pair_population(sols, np.random.default_rng(0))
        assert len(pairs) == 4
        used = [i for pair in pairs for i in pair]
        assert sorted(used) == list(range(8))

    def test_odd_leftover(self):
        sols = seed_population(6, 2, 3, 5, random_state=0)
        pairs = pair_population(sols, np.random.default_rng(0))
        assert len(pairs) == 2


class _FixedCut:
    """Stands in for a Generator, always returning the same cut point."""

    def __init__(self, cut):
        self.cut = cut

    def integers(self, low, high=None, size=None):
        return self.cut

    def random(self):
        return 0.0


class TestTwoPointCrossover:
    def test_paper_example_segment_exchange(self, evaluator3, monkeypatch):
        # Strings 3*2*1 and 1*33* cut after position 3 -> 3*23* and 1*3*1.
        import repro.search.evolutionary.crossover as crossover_module

        monkeypatch.setattr(crossover_module, "check_rng", lambda r: r)
        s1 = Solution.from_string("3*2*1")
        s2 = Solution.from_string("1*33*")
        c1, c2 = TwoPointCrossover().recombine(s1, s2, evaluator3, _FixedCut(3))
        assert c1.to_string() == "3*23*"
        assert c2.to_string() == "1*3*1"

    def test_can_create_infeasible_children(self, evaluator3, monkeypatch):
        # Cut after position 4 in the paper's example gives 2-d and 4-d
        # children from 3-d parents.
        import repro.search.evolutionary.crossover as crossover_module

        monkeypatch.setattr(crossover_module, "check_rng", lambda r: r)
        s1 = Solution.from_string("3*2*1")
        s2 = Solution.from_string("1*33*")
        c1, c2 = TwoPointCrossover().recombine(s1, s2, evaluator3, _FixedCut(4))
        assert {c1.dimensionality, c2.dimensionality} == {2, 4}

    def test_gene_conservation(self, evaluator):
        # Children's genes at each position come from one of the parents.
        rng = np.random.default_rng(3)
        for _ in range(20):
            s1 = random_solution(8, 3, 4, rng)
            s2 = random_solution(8, 3, 4, rng)
            c1, c2 = TwoPointCrossover().recombine(s1, s2, evaluator, rng)
            for i in range(8):
                assert {c1.genes[i], c2.genes[i]} == {s1.genes[i], s2.genes[i]}

    def test_two_cut_variant(self, evaluator):
        rng = np.random.default_rng(4)
        s1 = random_solution(10, 3, 4, rng)
        s2 = random_solution(10, 3, 4, rng)
        c1, c2 = TwoPointCrossover(two_cut_points=True).recombine(
            s1, s2, evaluator, rng
        )
        for i in range(10):
            assert {c1.genes[i], c2.genes[i]} == {s1.genes[i], s2.genes[i]}


class TestOptimizedCrossover:
    def test_children_always_feasible(self, evaluator):
        rng = np.random.default_rng(0)
        op = OptimizedCrossover()
        for _ in range(50):
            s1 = random_solution(6, 2, 5, rng)
            s2 = random_solution(6, 2, 5, rng)
            c1, c2 = op.recombine(s1, s2, evaluator, rng)
            assert c1.is_feasible(2), (s1.to_string(), s2.to_string(), c1.to_string())
            assert c2.is_feasible(2), (s1.to_string(), s2.to_string(), c2.to_string())

    def test_type1_positions_stay_wildcard(self, evaluator):
        s1 = Solution.from_string("12****")
        s2 = Solution.from_string("34****")
        c1, c2 = OptimizedCrossover().recombine(
            s1, s2, evaluator, np.random.default_rng(0)
        )
        for child in (c1, c2):
            assert child.genes[2:] == (WILDCARD_GENE,) * 4

    def test_complementarity(self, evaluator):
        # Every position of the second child derives from the opposite
        # parent of the first child's derivation.
        rng = np.random.default_rng(7)
        op = OptimizedCrossover()
        for _ in range(30):
            s1 = random_solution(6, 2, 5, rng)
            s2 = random_solution(6, 2, 5, rng)
            c1, c2 = op.recombine(s1, s2, evaluator, rng)
            for i in range(6):
                pair = {c1.genes[i], c2.genes[i]}
                assert pair == {s1.genes[i], s2.genes[i]}

    def test_identical_parents_fixed_point(self, evaluator):
        s = Solution.from_string("1*4***")
        c1, c2 = OptimizedCrossover().recombine(
            s, s, evaluator, np.random.default_rng(0)
        )
        assert c1 == s
        assert c2 == s

    def test_first_child_at_least_as_fit_as_best_recombinant_start(
        self, evaluator
    ):
        # With fully shared positions (k' = k), the child is the exact
        # optimum over all 2^k parent mixes.
        rng = np.random.default_rng(1)
        s1 = Solution.from_string("12****")
        s2 = Solution.from_string("45****")
        c1, _ = OptimizedCrossover().recombine(s1, s2, evaluator, rng)
        candidates = []
        import itertools

        for bits in itertools.product([0, 1], repeat=2):
            genes = list(s1.genes)
            for pos, b in zip((0, 1), bits, strict=True):
                genes[pos] = (s2 if b else s1).genes[pos]
            candidates.append(evaluator.partial_fitness(Solution(genes)))
        assert evaluator.partial_fitness(c1) == pytest.approx(min(candidates))

    def test_disjoint_parents_pick_greedy_best(self, evaluator):
        # No Type II positions: the child is built purely by greedy
        # extension over the 2k Type III candidates.
        rng = np.random.default_rng(2)
        s1 = Solution.from_string("12****")
        s2 = Solution.from_string("**34**")
        c1, c2 = OptimizedCrossover().recombine(s1, s2, evaluator, rng)
        assert c1.is_feasible(2)
        assert c2.is_feasible(2)
        # Together the children use exactly the union of parent genes.
        union = {(i, g) for s in (s1, s2) for i, g in enumerate(s.genes) if g >= 0}
        child_union = {
            (i, g) for s in (c1, c2) for i, g in enumerate(s.genes) if g >= 0
        }
        assert child_union == union

    def test_infeasible_parent_passthrough(self, evaluator):
        bad = Solution.from_string("123***")  # 3-d string in a k=2 run
        good = Solution.from_string("1*2***")
        c1, c2 = OptimizedCrossover().recombine(
            bad, good, evaluator, np.random.default_rng(0)
        )
        assert (c1, c2) == (bad, good)

    def test_greedy_fallback_above_exact_limit(self, small_cells):
        # Force the fallback path with max_exact_positions=1.
        evaluator = FitnessEvaluator(CubeCounter(small_cells), dimensionality=3)
        op = OptimizedCrossover(max_exact_positions=1)
        rng = np.random.default_rng(0)
        s1 = Solution.from_string("123***")
        s2 = Solution.from_string("245***")
        c1, c2 = op.recombine(s1, s2, evaluator, rng)
        assert c1.is_feasible(3)
        assert c2.is_feasible(3)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 4))
def test_property_optimized_children_feasible_and_complementary(
    seed, k
):
    """For random parents: both children feasible, genes conserved."""
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, 4, size=(60, 8)).astype(np.int16)
    counter = CubeCounter(CellAssignment(codes, 4))
    evaluator = FitnessEvaluator(counter, dimensionality=k)
    s1 = random_solution(8, k, 4, rng)
    s2 = random_solution(8, k, 4, rng)
    c1, c2 = OptimizedCrossover().recombine(s1, s2, evaluator, rng)
    assert c1.is_feasible(k)
    assert c2.is_feasible(k)
    for i in range(8):
        assert {c1.genes[i], c2.genes[i]} == {s1.genes[i], s2.genes[i]}
