"""Differential suite: out-of-core sharded counting vs the in-memory truth.

The sharded counter's contract is *bit-identity*: popcounts are additive
across row shards, so streaming the packed mask shards from disk must
reproduce the in-memory counters' numbers exactly — for every registered
backend, every native kernel tier, ragged final shards, duplicate and
prefix-sharing cubes, and missing values.  This suite pins that contract
plus the store's integrity envelope (atomic build, reuse, tamper
rejection) and the mmap worker pool's fault tolerance.
"""

from __future__ import annotations

import itertools
import json

import numpy as np
import pytest

from repro.core.params import CountingBackend, FaultPlan
from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.grid.cells import CellAssignment
from repro.grid.native import available_tiers, forced_tier
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.sharded import (
    ShardedCounter,
    ShardedMaskStore,
    group_digest,
)

# N deliberately not a multiple of shard_rows: the last shard is ragged
# (3 rows), and 100-row shards leave ragged packed words inside every
# shard (100 bits = 12.5 bytes -> 16-byte padded rows).
N_POINTS = 1003
SHARD_ROWS = 100


def make_cells(seed=0, n=N_POINTS, d=5, phi=3, missing=0.0) -> CellAssignment:
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, phi, size=(n, d), dtype=np.int16)
    if missing:
        codes[rng.random(codes.shape) < missing] = -1
    return CellAssignment(codes=codes, n_ranges=phi)


def all_cubes(n_dims, n_ranges, max_k):
    out = []
    for k in range(1, max_k + 1):
        for dims in itertools.combinations(range(n_dims), k):
            for rngs in itertools.product(range(n_ranges), repeat=k):
                out.append(Subspace(dims, rngs))
    return out


@pytest.fixture(scope="module")
def cells():
    return make_cells(missing=0.15)


@pytest.fixture(scope="module")
def store(cells, tmp_path_factory):
    directory = tmp_path_factory.mktemp("mask_store")
    return ShardedMaskStore.build(cells, directory, shard_rows=SHARD_ROWS)


@pytest.fixture(scope="module")
def cubes(cells):
    batch = all_cubes(cells.n_dims, cells.n_ranges, 3)
    # Salt the batch with exact duplicates — folded through the memo on
    # both sides, so they must not perturb the miss-set kernels.
    return batch + batch[:7]


@pytest.fixture(scope="module")
def reference_counts(cells, cubes):
    counter = PackedCubeCounter(cells)
    try:
        return counter.count_batch(cubes).tolist()
    finally:
        counter.close()


# ----------------------------------------------------------------------
class TestStoreBuild:
    def test_layout_and_ragged_final_shard(self, store):
        assert store.n_points == N_POINTS
        assert store.n_shards == 11
        assert store.shard_bounds(0) == (0, 100)
        assert store.shard_bounds(10) == (1000, 1003)
        # Every shard's packed rows are uint64-padded.
        for index in range(store.n_shards):
            assert store.shard_row_bytes(index) % 8 == 0
            stack8 = store.shard_stack8(index)
            assert stack8.shape == (
                store.n_dims, store.n_ranges, store.shard_row_bytes(index),
            )
            assert not stack8.flags.writeable

    def test_reuse_does_not_rewrite(self, cells, store):
        before = {
            path.name: path.stat().st_mtime_ns
            for path in store.directory.glob("shard_*.bin")
        }
        again = ShardedMaskStore.build(
            cells, store.directory, shard_rows=SHARD_ROWS
        )
        after = {
            path.name: path.stat().st_mtime_ns
            for path in again.directory.glob("shard_*.bin")
        }
        assert before == after
        assert again.fingerprint == store.fingerprint

    def test_changed_codes_rebuild(self, cells, tmp_path):
        first = ShardedMaskStore.build(cells, tmp_path, shard_rows=SHARD_ROWS)
        changed = CellAssignment(
            codes=np.ascontiguousarray(cells.codes[::-1]),
            n_ranges=cells.n_ranges,
        )
        second = ShardedMaskStore.build(changed, tmp_path, shard_rows=SHARD_ROWS)
        assert second.fingerprint != first.fingerprint

    def test_build_from_chunks_is_chunking_invariant(self, cells, tmp_path):
        whole = ShardedMaskStore.build(
            cells, tmp_path / "whole", shard_rows=SHARD_ROWS
        )
        # Re-block the same rows with awkward, uneven chunk sizes.
        splits = [0, 1, 64, 65, 257, 600, 999, N_POINTS]
        chunks = (
            cells.codes[lo:hi] for lo, hi in zip(splits, splits[1:])
        )
        ragged = ShardedMaskStore.build_from_chunks(
            chunks, tmp_path / "ragged",
            n_ranges=cells.n_ranges, shard_rows=SHARD_ROWS,
        )
        assert ragged.fingerprint == whole.fingerprint
        for index in range(whole.n_shards):
            a = whole.shard_stack8(index)
            b = ragged.shard_stack8(index)
            np.testing.assert_array_equal(np.asarray(a), np.asarray(b))

    def test_zero_rows_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="zero rows"):
            ShardedMaskStore.build_from_chunks(
                iter(()), tmp_path, n_ranges=3
            )

    def test_column_mismatch_rejected(self, tmp_path):
        chunks = [np.zeros((4, 3), dtype=np.int16), np.zeros((4, 2), dtype=np.int16)]
        with pytest.raises(ValidationError, match="columns"):
            ShardedMaskStore.build_from_chunks(chunks, tmp_path, n_ranges=3)

    def test_out_of_range_codes_rejected(self, tmp_path):
        chunk = np.full((4, 2), 5, dtype=np.int16)
        with pytest.raises(ValidationError, match="φ=3"):
            ShardedMaskStore.build_from_chunks([chunk], tmp_path, n_ranges=3)

    def test_non_2d_chunk_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="2-D"):
            ShardedMaskStore.build_from_chunks(
                [np.zeros(4, dtype=np.int16)], tmp_path, n_ranges=3
            )


class TestStoreIntegrity:
    @pytest.fixture
    def small_store(self, tmp_path):
        return ShardedMaskStore.build(
            make_cells(seed=9, n=70, d=3), tmp_path, shard_rows=32
        )

    def test_open_round_trips(self, small_store):
        reopened = ShardedMaskStore.open(small_store.directory)
        assert reopened.fingerprint == small_store.fingerprint
        assert reopened.n_shards == small_store.n_shards

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="missing manifest"):
            ShardedMaskStore.open(tmp_path)

    def test_corrupt_manifest_rejected(self, small_store):
        path = small_store.directory / "manifest.json"
        path.write_text(path.read_text()[:25])
        with pytest.raises(ValidationError, match="unreadable"):
            ShardedMaskStore.open(small_store.directory)

    def test_unknown_format_version_rejected(self, small_store):
        path = small_store.directory / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 99
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="format version"):
            ShardedMaskStore.open(small_store.directory)

    def test_truncated_shard_file_rejected(self, small_store):
        victim = small_store.directory / "shard_00001.bin"
        victim.write_bytes(victim.read_bytes()[:-8])
        with pytest.raises(ValidationError, match="wrong size"):
            ShardedMaskStore.open(small_store.directory)

    def test_missing_shard_file_rejected(self, small_store):
        (small_store.directory / "shard_00000.bin").unlink()
        with pytest.raises(ValidationError, match="missing or"):
            ShardedMaskStore.open(small_store.directory)

    def test_row_gap_rejected(self, small_store):
        path = small_store.directory / "manifest.json"
        manifest = json.loads(path.read_text())
        manifest["shards"][1]["start"] += 1
        path.write_text(json.dumps(manifest))
        with pytest.raises(ValidationError, match="starts at row"):
            ShardedMaskStore.open(small_store.directory)

    def test_group_digest_sensitivity(self, small_store):
        dims = np.array([[0, 1]], dtype=np.int64)
        rngs = np.array([[0, 2]], dtype=np.int64)
        base = group_digest(small_store.fingerprint, dims, rngs)
        assert group_digest(small_store.fingerprint, dims, rngs) == base
        assert group_digest("other", dims, rngs) != base
        assert group_digest(
            small_store.fingerprint, dims, rngs[:, ::-1]
        ) != base


# ----------------------------------------------------------------------
class TestShardedDifferential:
    """Shard-merged counts == in-memory counts, on every backend."""

    @pytest.mark.parametrize(
        "kind", ["serial", "native", "process", "process-native"]
    )
    def test_count_batch_matches_in_memory(
        self, store, cells, cubes, reference_counts, kind
    ):
        counter = ShardedCounter(
            store, backend=CountingBackend(kind=kind, n_workers=2)
        )
        try:
            assert counter.count_batch(cubes).tolist() == reference_counts
        finally:
            counter.close()

    def test_every_native_tier_matches(self, store, cubes, reference_counts):
        for tier in available_tiers():
            counter = ShardedCounter(
                store, backend=CountingBackend(kind="native"), cache_size=0
            )
            try:
                with forced_tier(tier):
                    got = counter.count_batch(cubes).tolist()
            finally:
                counter.close()
            assert got == reference_counts, tier

    def test_single_cube_paths_match(self, store, cells):
        memory = PackedCubeCounter(cells)
        sharded = ShardedCounter(store)
        probes = [
            Subspace((), ()),  # empty cube: the ragged tail-mask path
            Subspace((0,), (1,)),
            Subspace((1, 3), (0, 2)),
            Subspace((0, 2, 4), (2, 1, 0)),
        ]
        try:
            for subspace in probes:
                assert sharded.count(subspace) == memory.count(subspace)
                np.testing.assert_array_equal(
                    sharded.mask(subspace), memory.mask(subspace)
                )
                np.testing.assert_array_equal(
                    sharded.covered_points(subspace),
                    memory.covered_points(subspace),
                )
                assert sharded.fraction(subspace) == memory.fraction(subspace)
        finally:
            memory.close()
            sharded.close()

    def test_extension_counts_need_cells(self, store, cells):
        with_cells = ShardedCounter(store, cells=cells)
        without = ShardedCounter(store)
        memory = PackedCubeCounter(cells)
        base = memory.mask(Subspace((0,), (1,)))
        try:
            np.testing.assert_array_equal(
                with_cells.extension_counts(base, 2),
                memory.extension_counts(base, 2),
            )
            with pytest.raises(ValidationError, match="cells"):
                without.extension_counts(base, 2)
        finally:
            with_cells.close()
            without.close()
            memory.close()

    def test_single_shard_store_matches(self, cells, cubes, reference_counts, tmp_path):
        # shard_rows >= N: the degenerate one-shard store must behave
        # exactly like the multi-shard one.
        one = ShardedMaskStore.build(cells, tmp_path, shard_rows=1 << 20)
        assert one.n_shards == 1
        counter = ShardedCounter(one)
        try:
            assert counter.count_batch(cubes).tolist() == reference_counts
        finally:
            counter.close()

    def test_counter_validation(self, store, cells):
        with pytest.raises(ValidationError, match="ShardedMaskStore"):
            ShardedCounter(cells)  # type: ignore[arg-type]
        mismatched = make_cells(seed=1, n=N_POINTS - 1)
        with pytest.raises(ValidationError, match="do not match the store"):
            ShardedCounter(store, cells=mismatched)
        with pytest.raises(ValidationError, match="ShardCheckpointer"):
            ShardedCounter(store, checkpointer=object())  # type: ignore[arg-type]

    def test_memory_and_stats_accounting(self, store, cubes):
        counter = ShardedCounter(store)
        try:
            counter.count_batch(cubes[:30])
            stats = counter.cache_stats()
        finally:
            counter.close()
        assert counter.mask_memory_bytes() == 0
        assert stats["n_shards"] == store.n_shards
        assert stats["shard_rows"] == SHARD_ROWS
        assert stats["store_bytes"] == store.nbytes_on_disk()
        assert stats["shards_counted"] > 0
        assert stats["shards_resumed"] == 0


# ----------------------------------------------------------------------
class TestShardedPoolChaos:
    """The mmap worker pool under injected faults: counts never change."""

    def run_sharded(self, store, cubes, **backend_kwargs):
        backend_kwargs.setdefault("kind", "process")
        backend_kwargs.setdefault("n_workers", 2)
        backend_kwargs.setdefault("retry_backoff", 0.01)
        counter = ShardedCounter(store, backend=CountingBackend(**backend_kwargs))
        try:
            counts = counter.count_batch(cubes).tolist()
            return counts, counter.backend_health()
        finally:
            counter.close()

    def test_worker_kill_recovers_bit_identical(
        self, store, cubes, reference_counts
    ):
        counts, health = self.run_sharded(
            store, cubes, fault_plan=FaultPlan(kill_worker_on_chunk=1)
        )
        assert counts == reference_counts
        assert health["retries"] >= 1
        assert health["fallbacks"] >= 1
        assert health["chunks_serial"] >= 1

    def test_store_open_failure_rebuilds_then_recovers(
        self, store, cubes, reference_counts
    ):
        counts, health = self.run_sharded(
            store, cubes, fault_plan=FaultPlan(fail_shm_attach_once=True)
        )
        assert counts == reference_counts
        assert health["rebuilds"] >= 1
        assert health["fallbacks"] == 0
        assert health["chunks_parallel"] > 0

    def test_rebuild_exhaustion_degrades_to_serial(
        self, store, cubes, reference_counts
    ):
        counts, health = self.run_sharded(
            store, cubes,
            fault_plan=FaultPlan(kill_worker_on_chunk=0),
            max_rebuilds=0,
        )
        assert counts == reference_counts
        assert health["pool_degraded"]
        assert health["chunks_serial"] >= 1
