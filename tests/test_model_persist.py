"""Persistence schema v2 and hot-reload serving for ``repro.model``.

Pins the acceptance contract of the incremental model layer:

* a model saved under schema v2 restores — in the same process *and* in
  a fresh interpreter — and answers ``score(points)`` byte-identically;
* the full incremental state (sketch, occupancy, lifecycle counters,
  version, policy) round-trips, so a reloaded model keeps updating and
  drift-checking where the saved one left off;
* v1 snapshots (grid + projections only) load via migration;
* a doctored snapshot — missing, unknown or mistyped
  ``format_version`` — raises a typed :class:`PersistError` naming the
  file and the version found, never a silent misread;
* :class:`ModelHandle` hot reload: stamp-unchanged and byte-identical
  rewrites are served from cache, genuine rewrites reload exactly once
  and emit ``model_updated``/``hot_reload``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.engine.events import InMemoryEventSink
from repro.exceptions import PersistError, ValidationError
from repro.model import GridModel, ModelHandle
from repro.persist import (
    MODEL_FORMAT_VERSION,
    load_model,
    model_payload,
    save_model,
)

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


@pytest.fixture(scope="module")
def mined():
    """A detector run whose model carries real mined projections."""
    rng = np.random.default_rng(12345)
    latents = rng.normal(size=(300, 2))
    data = rng.normal(size=(300, 8))
    data[:, 0] += 2.0 * latents[:, 0]
    data[:, 1] -= latents[:, 0]
    data[:, 2] += 1.5 * latents[:, 1]
    detector = SubspaceOutlierDetector(
        dimensionality=2, n_ranges=4, method="brute_force"
    )
    detector.detect(data)
    return detector.model_, data


class TestV2RoundTrip:
    def test_score_parity_after_reload(self, mined, tmp_path):
        model, data = mined
        path = save_model(model, tmp_path / "model.json")
        loaded = load_model(path)
        assert loaded.is_serving
        np.testing.assert_array_equal(loaded.score(data), model.score(data))
        np.testing.assert_array_equal(loaded.predict(data), model.predict(data))

    def test_incremental_state_round_trips(self, mined, tmp_path, rng):
        model, data = mined
        fresh = GridModel.fit(data, n_ranges=4, rebin_policy="auto")
        fresh.projections = model.projections
        fresh.update(rng.normal(size=(25, data.shape[1])))
        path = save_model(fresh, tmp_path / "m.json")
        loaded = load_model(path)
        assert loaded.version == fresh.version
        assert loaded.n_points == fresh.n_points
        assert loaded.rebin_policy == "auto"
        assert loaded.drift_threshold == fresh.drift_threshold
        np.testing.assert_array_equal(loaded.occupancy, fresh.occupancy)
        stats, ref = loaded.stats_dict(), fresh.stats_dict()
        for key in ("updates", "rows_appended", "merges", "rebins",
                    "drift_events"):
            assert stats[key] == ref[key], key
        # The sketch came back too: the loaded model keeps absorbing.
        assert loaded.discretizer.sketch.n_seen == fresh.n_points
        before = loaded.version
        loaded.update(rng.normal(size=(10, data.shape[1])))
        assert loaded.version == before + 1

    def test_sketch_materialized_for_sketchless_model(self, mined, tmp_path):
        model, data = mined
        assert model.discretizer.sketch is None  # plain detect never sketches
        payload = model_payload(model)
        assert payload["sketch"] is not None
        assert payload["sketch"]["n_seen"] == data.shape[0]
        assert model.discretizer.sketch is None  # saving did not mutate

    def test_save_detector_routes_through_model(self, mined, tmp_path):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=4, method="brute_force"
        )
        _, data = mined
        detector.detect(data)
        path = save_model(detector, tmp_path / "d.json")
        payload = json.loads(path.read_text())
        assert payload["format_version"] == MODEL_FORMAT_VERSION
        assert payload["kind"] == "grid_model"
        loaded = load_model(path)
        np.testing.assert_array_equal(loaded.score(data), detector.score(data))

    def test_fresh_process_score_parity(self, mined, tmp_path):
        model, data = mined
        model_path = save_model(model, tmp_path / "model.json")
        np.save(tmp_path / "points.npy", data)
        script = (
            "import sys, numpy as np\n"
            "from repro.persist import load_model\n"
            "model = load_model(sys.argv[1])\n"
            "np.save(sys.argv[3], model.score(np.load(sys.argv[2])))\n"
        )
        env = dict(os.environ, PYTHONPATH=str(REPO_SRC))
        subprocess.run(
            [sys.executable, "-c", script, str(model_path),
             str(tmp_path / "points.npy"), str(tmp_path / "scores.npy")],
            check=True, env=env, cwd=tmp_path,
        )
        fresh = np.load(tmp_path / "scores.npy")
        here = model.score(data)
        assert fresh.tobytes() == here.tobytes()  # byte-identical, NaNs included


class TestV1Migration:
    def v1_payload(self, mined):
        model, _ = mined
        payload = model_payload(model)
        return {
            "format_version": 1,
            "n_ranges": payload["n_ranges"],
            "boundaries": payload["boundaries"],
            "feature_names": payload["feature_names"],
            "projections": payload["projections"],
        }

    def test_v1_snapshot_loads(self, mined, tmp_path):
        model, data = mined
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self.v1_payload(mined)))
        loaded = load_model(path)
        assert loaded.is_serving
        assert loaded.version == 0
        assert loaded.n_points == 0
        np.testing.assert_array_equal(loaded.score(data), model.score(data))

    def test_migrated_model_updates(self, mined, tmp_path, rng):
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(self.v1_payload(mined)))
        loaded = load_model(path)
        rows = rng.normal(size=(12, loaded.n_dims))
        loaded.update(rows)  # empty incremental state, but fully live
        assert loaded.n_points == 12
        assert loaded.version == 1


class TestDoctoredSnapshots:
    """The schema-version guard: typed errors naming file and version."""

    def doctor(self, mined, tmp_path, **edits):
        model, _ = mined
        payload = model_payload(model)
        for key, value in edits.items():
            if value is ...:
                payload.pop(key, None)
            else:
                payload[key] = value
        path = tmp_path / "doctored.json"
        path.write_text(json.dumps(payload))
        return path

    def test_missing_version(self, mined, tmp_path):
        path = self.doctor(mined, tmp_path, format_version=...)
        with pytest.raises(PersistError, match="missing format_version") as err:
            load_model(path)
        assert str(path) in str(err.value)
        assert "1..2" in str(err.value)

    def test_future_version(self, mined, tmp_path):
        path = self.doctor(mined, tmp_path, format_version=99)
        with pytest.raises(PersistError, match="unsupported format version 99"):
            load_model(path)

    @pytest.mark.parametrize("bad", ["2", 2.0, True, None, []])
    def test_mistyped_version(self, mined, tmp_path, bad):
        path = self.doctor(mined, tmp_path, format_version=bad)
        with pytest.raises(PersistError):
            load_model(path)

    def test_truncated_payload(self, mined, tmp_path):
        path = self.doctor(mined, tmp_path, boundaries=...)
        with pytest.raises(PersistError, match="malformed model payload"):
            load_model(path)

    def test_non_object_payload(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(PersistError, match="expected an object"):
            load_model(path)

    def test_persist_error_is_validation_error(self):
        # Callers catching the historical ValidationError keep working.
        assert issubclass(PersistError, ValidationError)


class TestModelHandle:
    def saved(self, mined, tmp_path, sink=None):
        model, data = mined
        path = save_model(model, tmp_path / "m.json")
        return ModelHandle(path, event_sink=sink), data

    def test_unchanged_file_served_from_cache(self, mined, tmp_path):
        handle, _ = self.saved(mined, tmp_path)
        first = handle.current()
        assert handle.current() is first
        assert handle.reloads == 0

    def test_touched_but_identical_bytes_no_reload(self, mined, tmp_path):
        handle, _ = self.saved(mined, tmp_path)
        first = handle.current()
        content = handle.path.read_bytes()
        handle.path.write_bytes(content)
        os.utime(handle.path, ns=(1, 1))  # force a new stamp
        assert handle.current() is first
        assert handle.reloads == 0

    def test_external_rewrite_reloads_once(self, mined, tmp_path):
        sink = InMemoryEventSink()
        handle, data = self.saved(mined, tmp_path, sink)
        first = handle.current()
        rewritten = load_model(handle.path)
        rewritten.update(data[:5])
        handle.path.write_text(json.dumps(model_payload(rewritten)))
        os.utime(handle.path, ns=(2, 2))
        second = handle.current()
        assert second is not first
        assert second.version == first.version + 1
        assert handle.reloads == 1
        (event,) = [
            e for e in sink.of_type("model_updated")
            if e.payload.get("action") == "hot_reload"
        ]
        assert event.payload["path"] == str(handle.path)
        # And it is cached again afterwards.
        assert handle.current() is second

    def test_own_save_not_reloaded(self, mined, tmp_path):
        handle, data = self.saved(mined, tmp_path)
        model = handle.current()
        model.update(data[:5])
        handle.save(model)
        assert handle.current() is model
        assert handle.reloads == 0

    def test_missing_file_raises(self, tmp_path):
        handle = ModelHandle(tmp_path / "absent.json")
        with pytest.raises(PersistError, match="not found"):
            handle.current()
