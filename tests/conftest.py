"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer


@pytest.fixture
def rng():
    """A deterministic generator for test data."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_data(rng):
    """200 x 6 standard normal matrix."""
    return rng.normal(size=(200, 6))


@pytest.fixture
def correlated_data(rng):
    """300 x 8: dims 0-1 and 2-3 strongly correlated, rest noise."""
    data = rng.normal(size=(300, 8))
    latent_a = rng.normal(size=300)
    latent_b = rng.normal(size=300)
    data[:, 0] = latent_a + rng.normal(scale=0.1, size=300)
    data[:, 1] = latent_a + rng.normal(scale=0.1, size=300)
    data[:, 2] = latent_b + rng.normal(scale=0.1, size=300)
    data[:, 3] = latent_b + rng.normal(scale=0.1, size=300)
    return data


@pytest.fixture
def small_cells(small_data):
    """Equi-depth φ=5 grid over small_data."""
    return EquiDepthDiscretizer(5).fit_transform(small_data)


@pytest.fixture
def small_counter(small_cells):
    """Cube counter over the φ=5 grid."""
    return CubeCounter(small_cells)


def naive_cube_count(cells_codes: np.ndarray, subspace) -> int:
    """Reference implementation of n(D) by direct row scanning."""
    count = 0
    for row in cells_codes:
        if all(row[dim] == rng_ for dim, rng_ in subspace):
            count += 1
    return count
