"""Tests for the UCI stand-in datasets."""

import numpy as np
import pytest

from repro.data.registry import DATASETS, load_dataset
from repro.data.uci import (
    ARRHYTHMIA_CLASS_COUNTS,
    ARRHYTHMIA_COMMON_CLASSES,
    ARRHYTHMIA_RARE_CLASSES,
    arrhythmia,
    housing,
)
from repro.exceptions import DatasetError


#: The paper's Table 1 dataset dimensions.
PAPER_SHAPES = {
    "breast_cancer": (699, 14),
    "ionosphere": (351, 34),
    "segmentation": (2310, 19),
    "musk": (476, 160),
    "machine": (209, 8),
    "arrhythmia": (452, 279),
    "housing": (506, 14),
}


class TestShapesMatchPaper:
    @pytest.mark.parametrize("name,shape", sorted(PAPER_SHAPES.items()))
    def test_n_and_d(self, name, shape):
        dataset = load_dataset(name)
        assert (dataset.n_points, dataset.n_dims) == shape

    @pytest.mark.parametrize("name", sorted(PAPER_SHAPES))
    def test_deterministic(self, name):
        a = load_dataset(name)
        b = load_dataset(name)
        np.testing.assert_array_equal(a.values, b.values)

    @pytest.mark.parametrize("name", sorted(PAPER_SHAPES))
    def test_metadata_has_phi(self, name):
        dataset = load_dataset(name)
        assert int(dataset.metadata["phi"]) >= 2


class TestArrhythmia:
    def test_table2_class_distribution_exact(self):
        dataset = arrhythmia()
        codes, counts = np.unique(dataset.labels, return_counts=True)
        assert dict(zip(codes.tolist(), counts.tolist(), strict=True)) == ARRHYTHMIA_CLASS_COUNTS

    def test_table2_marginals(self):
        dataset = arrhythmia()
        common = np.isin(dataset.labels, sorted(ARRHYTHMIA_COMMON_CLASSES))
        assert common.mean() == pytest.approx(0.854, abs=0.001)
        assert (~common).mean() == pytest.approx(0.146, abs=0.001)

    def test_rare_labels_match_paper(self):
        # Table 2 groups class 16 (22/452 = 4.87%) with the common
        # classes despite the nominal 5% cut, so a threshold just below
        # its share reproduces the paper's split exactly.
        dataset = arrhythmia()
        assert dataset.rare_labels(0.048) == set(ARRHYTHMIA_RARE_CLASSES)
        assert dataset.rare_labels(0.05) == (
            set(ARRHYTHMIA_RARE_CLASSES) | {16}
        )

    def test_13_nonempty_classes(self):
        dataset = arrhythmia()
        assert len(set(dataset.labels.tolist())) == 13

    def test_planted_outliers_are_rare_class(self):
        dataset = arrhythmia()
        flagged_labels = dataset.labels[dataset.planted_outliers]
        assert np.isin(flagged_labels, sorted(ARRHYTHMIA_RARE_CLASSES)).all()

    def test_recording_error_row(self):
        dataset = arrhythmia()
        row = dataset.metadata["recording_error_row"]
        height = dataset.feature_names.index("height")
        weight = dataset.feature_names.index("weight")
        assert dataset.values[row, height] == 780.0
        assert dataset.values[row, weight] == 6.0
        # The error row is a common-class record, per the paper's anecdote.
        assert int(dataset.labels[row]) in ARRHYTHMIA_COMMON_CLASSES

    def test_distractors_are_common_class(self):
        dataset = arrhythmia()
        for row in dataset.metadata["distractor_rows"]:
            assert int(dataset.labels[row]) in ARRHYTHMIA_COMMON_CLASSES


class TestHousing:
    def test_feature_names(self):
        dataset = housing()
        assert dataset.feature_names[0] == "CRIM"
        assert "CHAS" in dataset.feature_names
        assert "MEDV" in dataset.feature_names

    def test_chas_is_binary(self):
        dataset = housing()
        chas = dataset.values[:, dataset.feature_names.index("CHAS")]
        assert set(np.unique(chas).tolist()) <= {0.0, 1.0}

    def test_paper_correlations_present(self):
        dataset = housing()
        col = {n: i for i, n in enumerate(dataset.feature_names)}
        values = dataset.values

        def corr(a, b):
            return np.corrcoef(values[:, col[a]], values[:, col[b]])[0, 1]

        assert corr("CRIM", "RAD") > 0.3       # crime with highway access
        assert corr("NOX", "AGE") > 0.3        # nitric oxide with old houses
        assert corr("CRIM", "DIS") < -0.2      # crime near employment centers
        assert corr("CRIM", "MEDV") < -0.2     # crime depresses prices

    def test_contrarian_records_planted(self):
        dataset = housing()
        col = {n: i for i, n in enumerate(dataset.feature_names)}
        values = dataset.values
        row, dims = dataset.metadata["contrarians"][0]
        assert dims == ("CRIM", "PTRATIO", "DIS")
        assert values[row, col["CRIM"]] >= np.quantile(values[:, col["CRIM"]], 0.85)
        assert values[row, col["DIS"]] <= np.quantile(values[:, col["DIS"]], 0.15)

    def test_planted_outliers_recorded(self):
        dataset = housing()
        assert dataset.planted_outliers is not None
        assert dataset.planted_outliers.size == 3


class TestRegistry:
    def test_all_registered(self):
        assert set(PAPER_SHAPES) <= set(DATASETS)
        assert "figure1_views" in DATASETS

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="available"):
            load_dataset("not_a_dataset")

    def test_random_state_override_changes_data(self):
        a = load_dataset("machine")
        b = load_dataset("machine", random_state=999)
        assert not np.array_equal(a.values, b.values)
