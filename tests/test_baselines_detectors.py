"""Tests for the kNN-distance, DB(k, λ), and LOF baseline detectors."""

import numpy as np
import pytest

from repro.baselines.distance_threshold import DBOutlierDetector, suggest_radius
from repro.baselines.knn import KNNDistanceOutlierDetector
from repro.baselines.lof import LOFOutlierDetector
from repro.baselines.result import BaselineResult
from repro.exceptions import ValidationError


@pytest.fixture
def blob_with_outlier(rng):
    """A tight Gaussian blob plus one far-away point (last row)."""
    data = rng.normal(size=(100, 3))
    data = np.vstack([data, [[25.0, 25.0, 25.0]]])
    return data


class TestBaselineResult:
    def test_mask_and_top(self):
        result = BaselineResult(
            outlier_indices=np.array([3, 1]),
            scores=np.array([0.0, 5.0, 0.0, 9.0]),
            method="test",
        )
        assert result.n_outliers == 2
        assert result.n_points == 4
        mask = result.outlier_mask()
        assert mask[1] and mask[3]
        np.testing.assert_array_equal(result.top(1), [3])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            BaselineResult(np.array([5]), np.array([1.0]), "test")


class TestKNNDetector:
    def test_finds_global_outlier(self, blob_with_outlier):
        result = KNNDistanceOutlierDetector(n_neighbors=1, n_outliers=1).detect(
            blob_with_outlier
        )
        assert result.outlier_indices[0] == 100

    def test_scores_are_knn_distances(self, blob_with_outlier):
        detector = KNNDistanceOutlierDetector(n_neighbors=2, n_outliers=5)
        result = detector.detect(blob_with_outlier)
        np.testing.assert_allclose(
            result.scores, detector.scores(blob_with_outlier)
        )

    def test_outliers_sorted_by_score(self, blob_with_outlier):
        result = KNNDistanceOutlierDetector(n_neighbors=1, n_outliers=10).detect(
            blob_with_outlier
        )
        flagged_scores = result.scores[result.outlier_indices]
        assert (np.diff(flagged_scores) <= 0).all()

    def test_deterministic_tie_break(self):
        data = np.array([[0.0], [1.0], [3.0], [4.0]])
        result = KNNDistanceOutlierDetector(n_neighbors=1, n_outliers=4).detect(data)
        # All kth-NN distances equal 1; ties break by ascending index.
        np.testing.assert_array_equal(result.outlier_indices, [0, 1, 2, 3])

    def test_n_outliers_exceeds_points(self, rng):
        with pytest.raises(ValidationError):
            KNNDistanceOutlierDetector(n_outliers=10).detect(rng.normal(size=(5, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            KNNDistanceOutlierDetector().detect([[np.nan, 1.0], [0.0, 1.0]])


class TestDBDetector:
    def test_explicit_radius(self, blob_with_outlier):
        result = DBOutlierDetector(max_neighbors=2, radius=3.0).detect(
            blob_with_outlier
        )
        assert 100 in result.outlier_indices

    def test_tiny_radius_flags_everything(self, blob_with_outlier):
        result = DBOutlierDetector(max_neighbors=0, radius=1e-9).detect(
            blob_with_outlier
        )
        assert result.n_outliers == len(blob_with_outlier)

    def test_huge_radius_flags_nothing(self, blob_with_outlier):
        result = DBOutlierDetector(max_neighbors=0, radius=1e6).detect(
            blob_with_outlier
        )
        assert result.n_outliers == 0

    def test_auto_radius(self, blob_with_outlier):
        detector = DBOutlierDetector(max_neighbors=1, random_state=0)
        radius = detector.resolve_radius(blob_with_outlier)
        assert radius > 0
        result = detector.detect(blob_with_outlier)
        assert result.params["radius"] == pytest.approx(radius, rel=0.5)

    def test_flagged_sorted_fewest_neighbors_first(self, blob_with_outlier):
        result = DBOutlierDetector(max_neighbors=5, radius=2.0).detect(
            blob_with_outlier
        )
        counts = -result.scores[result.outlier_indices]
        assert (np.diff(counts) >= 0).all()

    def test_invalid_radius(self):
        with pytest.raises(ValidationError):
            DBOutlierDetector(radius=-1.0)


class TestSuggestRadius:
    def test_quantile_semantics(self, rng):
        data = rng.normal(size=(60, 2))
        small = suggest_radius(data, 0.01, random_state=0)
        large = suggest_radius(data, 0.5, random_state=0)
        assert 0 < small < large

    def test_sampling_deterministic(self, rng):
        data = rng.normal(size=(1000, 2))
        a = suggest_radius(data, 0.05, max_sample=50, random_state=3)
        b = suggest_radius(data, 0.05, max_sample=50, random_state=3)
        assert a == b


class TestLOF:
    def test_finds_local_outlier(self, rng):
        # Two clusters of different density + a point just outside the
        # dense cluster: classic LOF-beats-global-distance setup.
        dense = rng.normal(scale=0.1, size=(50, 2))
        sparse = rng.normal(scale=2.0, size=(50, 2)) + 20.0
        local_outlier = np.array([[0.9, 0.9]])
        data = np.vstack([dense, sparse, local_outlier])
        result = LOFOutlierDetector(n_neighbors=10, n_outliers=3).detect(data)
        assert 100 in result.outlier_indices

    def test_uniform_data_scores_near_one(self, rng):
        data = rng.random((300, 2))
        scores = LOFOutlierDetector(n_neighbors=15).scores(data)
        assert np.median(np.abs(scores - 1.0)) < 0.2

    def test_handles_duplicates(self):
        data = np.vstack([np.zeros((20, 2)), [[5.0, 5.0]]])
        scores = LOFOutlierDetector(n_neighbors=3).scores(data)
        assert np.isfinite(scores).all()

    def test_n_neighbors_too_large(self, rng):
        with pytest.raises(ValidationError):
            LOFOutlierDetector(n_neighbors=10).scores(rng.normal(size=(5, 2)))

    def test_detect_orders_by_score(self, rng):
        data = rng.normal(size=(80, 3))
        result = LOFOutlierDetector(n_neighbors=8, n_outliers=10).detect(data)
        flagged = result.scores[result.outlier_indices]
        assert (np.diff(flagged) <= 0).all()
