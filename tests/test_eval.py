"""Tests for the evaluation metrics, harness, and comparison tables."""

import numpy as np
import pytest

from repro.data.registry import load_dataset
from repro.eval.comparison import ComparisonRow, build_table1, render_table
from repro.eval.harness import detector_for_dataset, timed_detection
from repro.eval.metrics import (
    enrichment_lift,
    jaccard_overlap,
    rare_class_report,
    recall_of_planted,
)
from repro.exceptions import ValidationError
from repro.search.evolutionary.config import EvolutionaryConfig


class TestRareClassReport:
    def test_paper_style_numbers(self):
        # 85 flagged, 43 rare-class hits against a 14.6% base rate.
        labels = np.array([0] * 386 + [1] * 66)
        flagged = list(range(386, 386 + 43)) + list(range(42))
        report = rare_class_report(flagged, labels, rare_labels=[1])
        assert report.n_flagged == 85
        assert report.n_rare_hits == 43
        assert report.precision == pytest.approx(43 / 85)
        assert report.lift == pytest.approx((43 / 85) / (66 / 452), rel=1e-6)

    def test_str_rendering(self):
        labels = np.array([0, 0, 1, 1])
        report = rare_class_report([2], labels, [1])
        assert "1 of 1" in str(report)

    def test_empty_flagged(self):
        report = rare_class_report([], np.array([0, 1]), [1])
        assert report.n_flagged == 0
        assert report.precision == 0.0

    def test_out_of_range_flagged(self):
        with pytest.raises(ValidationError):
            rare_class_report([9], np.array([0, 1]), [1])

    def test_enrichment_lift_shorthand(self):
        labels = np.array([0] * 90 + [1] * 10)
        assert enrichment_lift(range(90, 100), labels, [1]) == pytest.approx(10.0)


class TestSetMetrics:
    def test_recall_of_planted(self):
        assert recall_of_planted([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 3)
        assert recall_of_planted([], [1]) == 0.0
        assert recall_of_planted([1], []) == 1.0

    def test_jaccard(self):
        assert jaccard_overlap([1, 2], [2, 3]) == pytest.approx(1 / 3)
        assert jaccard_overlap([], []) == 1.0
        assert jaccard_overlap([1], [1]) == 1.0


@pytest.fixture(scope="module")
def machine_dataset():
    return load_dataset("machine")


@pytest.fixture(scope="module")
def quick_cfg():
    return EvolutionaryConfig(population_size=20, max_generations=20)


class TestHarness:
    def test_timed_detection_brute(self, machine_dataset):
        cell = timed_detection(machine_dataset, "brute", n_projections=10)
        assert cell.completed
        assert cell.elapsed_seconds > 0
        assert cell.quality < 0
        assert cell.extra["phi"] == machine_dataset.metadata["phi"]

    def test_timed_detection_gen_variants(self, machine_dataset, quick_cfg):
        gen = timed_detection(
            machine_dataset, "gen", config=quick_cfg, random_state=0
        )
        gen_opt = timed_detection(
            machine_dataset, "gen_opt", config=quick_cfg, random_state=0
        )
        assert gen.algorithm == "gen"
        assert gen_opt.algorithm == "gen_opt"

    def test_unknown_algorithm(self, machine_dataset):
        with pytest.raises(ValidationError):
            detector_for_dataset(machine_dataset, "magic")

    def test_row_flattening(self, machine_dataset):
        cell = timed_detection(machine_dataset, "brute", n_projections=5)
        row = cell.row()
        assert row["dataset"] == "machine"
        assert isinstance(row["time_s"], float)


class TestComparison:
    @pytest.fixture(scope="class")
    def rows(self, machine_dataset, quick_cfg):
        return build_table1(
            [machine_dataset], config=quick_cfg, random_state=0
        )

    def test_row_structure(self, rows):
        row = rows[0]
        assert isinstance(row, ComparisonRow)
        assert row.dataset == "machine"
        assert row.brute is not None
        assert row.brute.completed

    def test_gen_never_beats_brute(self, rows):
        row = rows[0]
        # Brute force is the exhaustive optimum over the same space.
        assert row.gen_opt.quality >= row.brute.quality - 1e-9

    def test_skip_brute_above_dims(self, machine_dataset, quick_cfg):
        rows = build_table1(
            [machine_dataset],
            config=quick_cfg,
            skip_brute_above_dims=4,
            random_state=0,
        )
        assert rows[0].brute is None
        assert not rows[0].gen_opt_matches_brute

    def test_render_table_layout(self, rows):
        text = render_table(rows)
        assert "Data Set" in text
        assert "machine (8)" in text
        assert "(quality)" in text

    def test_render_dash_for_missing_brute(self, machine_dataset, quick_cfg):
        rows = build_table1(
            [machine_dataset],
            config=quick_cfg,
            skip_brute_above_dims=4,
            random_state=0,
        )
        line = render_table(rows).splitlines()[3]
        assert line.split()[2] == "-"
