"""Tests for the reusable experiment protocols."""

import numpy as np
import pytest

from repro.data.loaders import Dataset
from repro.data.registry import load_dataset
from repro.eval.protocols import (
    run_arrhythmia_protocol,
    run_figure1_protocol,
    run_housing_protocol,
)
from repro.exceptions import ValidationError
from repro.search.evolutionary.config import EvolutionaryConfig


QUICK = EvolutionaryConfig(population_size=40, max_generations=30, restarts=2)


class TestArrhythmiaProtocol:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_arrhythmia_protocol(
            load_dataset("arrhythmia"), config=QUICK, random_state=0
        )

    def test_projections_respect_threshold(self, outcome):
        assert all(p.coefficient <= -3.0 for p in outcome.result.projections)

    def test_knn_reports_same_size(self, outcome):
        for report in outcome.knn_reports.values():
            assert report.n_flagged == max(outcome.result.n_outliers, 1)

    def test_summary_lines(self, outcome):
        lines = outcome.summary_lines()
        assert any("subspace" in line for line in lines)
        assert any("kNN (1-NN)" in line for line in lines)

    def test_needs_labels(self):
        unlabeled = Dataset(
            name="x", values=np.zeros((10, 3)), feature_names=("a", "b", "c")
        )
        with pytest.raises(ValidationError, match="labelled"):
            run_arrhythmia_protocol(unlabeled)

    def test_needs_rare_classes_metadata(self):
        labelled = Dataset(
            name="x",
            values=np.random.default_rng(0).normal(size=(30, 3)),
            feature_names=("a", "b", "c"),
            labels=np.zeros(30, dtype=int),
        )
        with pytest.raises(ValidationError, match="rare_classes"):
            run_arrhythmia_protocol(labelled)


class TestFigure1Protocol:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_figure1_protocol(
            load_dataset("figure1_views"),
            config=EvolutionaryConfig(
                population_size=60, max_generations=60, restarts=4
            ),
            random_state=0,
        )

    def test_subspace_beats_baselines(self, outcome):
        for point, sub_rank in outcome.subspace_ranks.items():
            assert sub_rank is not None
            assert sub_rank < outcome.knn_ranks[point]
            assert sub_rank < outcome.lof_ranks[point]

    def test_summary_table(self, outcome):
        lines = outcome.summary_lines()
        assert "subspace" in lines[0]
        assert len(lines) == 3  # header + two planted points

    def test_needs_planted(self):
        plain = Dataset(
            name="x",
            values=np.random.default_rng(0).normal(size=(30, 3)),
            feature_names=("a", "b", "c"),
        )
        with pytest.raises(ValidationError, match="planted"):
            run_figure1_protocol(plain)


class TestHousingProtocol:
    @pytest.fixture(scope="class")
    def outcome(self):
        return run_housing_protocol(load_dataset("housing"), random_state=0)

    def test_full_recall_with_brute_force(self, outcome):
        assert outcome.recall == 1.0

    def test_binary_attribute_dropped(self, outcome):
        assert "CHAS" not in outcome.feature_names
        assert len(outcome.feature_names) == 13

    def test_explanations_cover_planted(self, outcome):
        assert len(outcome.explanations) == 3
        assert all(e.findings for e in outcome.explanations)

    def test_summary_mentions_recall(self, outcome):
        assert "recall" in outcome.summary_lines()[0]

    def test_evolutionary_variant_runs(self):
        outcome = run_housing_protocol(
            load_dataset("housing"),
            dimensionality=3,
            method="evolutionary",
            config=QUICK,
            random_state=1,
        )
        assert all(p.dimensionality == 3 for p in outcome.result.projections)
