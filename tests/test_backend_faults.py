"""Chaos harness: the process counting backend under injected faults.

Every scenario a :class:`~repro.core.params.FaultPlan` can express —
worker death (``BrokenProcessPool``), a hung chunk caught by the
watchdog timeout, a failed shared-memory attach, and a pool-rebuild
storm that exhausts ``max_rebuilds`` — must end the same way: counts
(and therefore full detection results) bit-identical to the serial
backend, with the degradation recorded in ``backend_health``.

The plans are deterministic (faults key on the run-wide chunk dispatch
sequence), so every scenario here is exactly reproducible.
"""

from __future__ import annotations

import itertools
import time

import numpy as np
import pytest
from concurrent.futures import BrokenExecutor

from repro.core.detector import SubspaceOutlierDetector
from repro.core.params import CountingBackend, FaultPlan
from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.grid.health import BackendHealth
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.parallel import CountingPool, _count_chunk


def make_cells(seed=0, n=150, d=5, phi=3, missing=0.0) -> CellAssignment:
    rng = np.random.default_rng(seed)
    codes = rng.integers(0, phi, size=(n, d), dtype=np.int16)
    if missing:
        codes[rng.random(codes.shape) < missing] = -1
    return CellAssignment(codes=codes, n_ranges=phi)


def all_cubes(n_dims, n_ranges, max_k):
    out = []
    for k in range(1, max_k + 1):
        for dims in itertools.combinations(range(n_dims), k):
            for rngs in itertools.product(range(n_ranges), repeat=k):
                out.append(Subspace(dims, rngs))
    return out


@pytest.fixture(scope="module")
def cells():
    return make_cells()


@pytest.fixture(scope="module")
def cubes(cells):
    return all_cubes(cells.n_dims, cells.n_ranges, 3)


@pytest.fixture(scope="module")
def serial_counts(cells, cubes):
    counter = CubeCounter(cells)
    try:
        return counter.count_batch(cubes).tolist()
    finally:
        counter.close()


def faulty_backend(**kwargs) -> CountingBackend:
    kwargs.setdefault("kind", "process")
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("chunk_size", 16)
    kwargs.setdefault("retry_backoff", 0.01)
    return CountingBackend(**kwargs)


def run_batch(cells, cubes, backend, counter_cls=CubeCounter):
    counter = counter_cls(cells, backend=backend)
    try:
        counts = counter.count_batch(cubes).tolist()
        return counts, counter.backend_health()
    finally:
        counter.close()


class TestFaultPlanValidation:
    def test_negative_chunk_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan(kill_worker_on_chunk=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            FaultPlan(delay_chunk=0, delay_seconds=-0.5)

    def test_trigger_limit_positive(self):
        with pytest.raises(ValidationError):
            FaultPlan(kill_worker_on_chunk=0, trigger_limit=0)

    def test_applies_semantics(self):
        always = FaultPlan(kill_worker_on_chunk=0)
        assert always.applies(1) and always.applies(100)
        once = FaultPlan(kill_worker_on_chunk=0, trigger_limit=1)
        assert once.applies(1) and not once.applies(2)

    def test_backend_rejects_bad_policy(self):
        with pytest.raises(ValidationError):
            CountingBackend(kind="process", timeout=0.0)
        with pytest.raises(ValidationError):
            CountingBackend(kind="process", retry_backoff=-1.0)
        with pytest.raises(ValidationError):
            CountingBackend(kind="process", fault_plan="kill")  # type: ignore[arg-type]


class TestNoFaultBaseline:
    """No fault configured ⇒ zero degradation telemetry, full parallelism."""

    def test_clean_run_records_nothing(self, cells, cubes, serial_counts):
        counts, health = run_batch(cells, cubes, faulty_backend())
        assert counts == serial_counts
        assert health["retries"] == 0
        assert health["timeouts"] == 0
        assert health["rebuilds"] == 0
        assert health["fallbacks"] == 0
        assert health["chunks_serial"] == 0
        assert health["chunks_parallel"] > 0
        assert health["chunk_latency"]["count"] == health["chunks_parallel"]

    def test_serial_backend_records_nothing(self, cells, cubes, serial_counts):
        counter = CubeCounter(cells)
        try:
            assert counter.count_batch(cubes).tolist() == serial_counts
            health = counter.backend_health()
        finally:
            counter.close()
        assert not any(
            health[key]
            for key in ("retries", "timeouts", "rebuilds", "fallbacks")
        )
        assert health["chunks_parallel"] == 0


class TestWorkerKill:
    """A worker dying hard must not change a single count."""

    def test_kill_recovers_bit_identical(self, cells, cubes, serial_counts):
        backend = faulty_backend(fault_plan=FaultPlan(kill_worker_on_chunk=1))
        counts, health = run_batch(cells, cubes, backend)
        assert counts == serial_counts
        # The killed chunk exhausts its retries (the fault re-fires on
        # every attempt) and degrades to the serial kernel.
        assert health["fallbacks"] >= 1
        assert health["rebuilds"] >= 1
        assert health["retries"] >= 1
        assert health["chunks_serial"] >= 1

    def test_kill_recovers_packed(self, cells, cubes, serial_counts):
        backend = faulty_backend(fault_plan=FaultPlan(kill_worker_on_chunk=2))
        counts, health = run_batch(cells, cubes, backend, PackedCubeCounter)
        assert counts == serial_counts
        assert health["fallbacks"] >= 1

    def test_kill_with_missing_values(self):
        cells = make_cells(seed=3, missing=0.2)
        cubes = all_cubes(cells.n_dims, cells.n_ranges, 3)
        serial = CubeCounter(cells)
        try:
            expected = serial.count_batch(cubes).tolist()
        finally:
            serial.close()
        backend = faulty_backend(fault_plan=FaultPlan(kill_worker_on_chunk=0))
        counts, health = run_batch(cells, cubes, backend)
        assert counts == expected
        assert health["fallbacks"] >= 1


class TestChunkTimeout:
    """The watchdog catches a hung chunk; results stay identical."""

    def test_hung_chunk_retries_then_succeeds(self, cells, cubes, serial_counts):
        backend = faulty_backend(
            timeout=0.3,
            fault_plan=FaultPlan(
                delay_chunk=0, delay_seconds=1.5, trigger_limit=1
            ),
        )
        counts, health = run_batch(cells, cubes, backend)
        assert counts == serial_counts
        assert health["timeouts"] >= 1
        assert health["retries"] >= 1
        # The stall fired only on the first attempt, so the retry
        # succeeded on the rebuilt pool: no serial fallback needed.
        assert health["rebuilds"] >= 1

    def test_persistently_hung_chunk_falls_back(self, cells, cubes, serial_counts):
        backend = faulty_backend(
            timeout=0.3,
            max_retries=1,
            fault_plan=FaultPlan(delay_chunk=0, delay_seconds=1.0),
        )
        counts, health = run_batch(cells, cubes, backend)
        assert counts == serial_counts
        assert health["timeouts"] >= 1
        assert health["fallbacks"] >= 1


class TestShmAttachFailure:
    """Worker initializers failing once ⇒ one rebuild, then healthy."""

    def test_first_generation_fails_then_recovers(self, cells, cubes, serial_counts):
        backend = faulty_backend(fault_plan=FaultPlan(fail_shm_attach_once=True))
        counts, health = run_batch(cells, cubes, backend)
        assert counts == serial_counts
        assert health["rebuilds"] >= 1
        assert health["retries"] >= 1
        # The rebuilt pool attaches fine: everything completes parallel.
        assert health["fallbacks"] == 0
        assert health["chunks_parallel"] > 0


class TestRebuildStorm:
    """Exhausting max_rebuilds abandons the pool, run completes serially."""

    def test_degrades_to_serial_and_completes(self, cells, cubes, serial_counts):
        backend = faulty_backend(
            fault_plan=FaultPlan(kill_worker_on_chunk=1),
            max_rebuilds=0,
        )
        counts, health = run_batch(cells, cubes, backend)
        assert counts == serial_counts
        assert health["pool_degraded"]
        assert health["chunks_serial"] >= 1
        assert health["rebuilds"] == 0

    def test_bounded_storm_still_recovers(self, cells, cubes, serial_counts):
        backend = faulty_backend(
            fault_plan=FaultPlan(kill_worker_on_chunk=1),
            max_retries=3,
            max_rebuilds=10,
        )
        counts, health = run_batch(cells, cubes, backend)
        assert counts == serial_counts
        # Each re-fire of the kill breaks the pool again: a storm of
        # rebuilds, bounded by the retry budget of the poisoned chunk.
        assert health["rebuilds"] >= 2
        assert not health["pool_degraded"]


class TestDetectorUnderFaults:
    """Acceptance: detect() completes bit-identically under a worker kill."""

    @pytest.fixture(scope="class")
    def data(self):
        return np.random.default_rng(42).normal(size=(100, 4))

    def _detect(self, data, counting=None, **kwargs):
        kwargs.setdefault("dimensionality", 2)
        kwargs.setdefault("n_ranges", 3)
        kwargs.setdefault("n_projections", 8)
        kwargs.setdefault("method", "evolutionary")
        kwargs.setdefault("random_state", 7)
        detector = SubspaceOutlierDetector(counting=counting, **kwargs)
        return detector.detect(data)

    def test_detect_with_worker_kill_matches_serial(self, data):
        # The acceptance scenario: a worker dies mid-generation of the
        # GA; detect() must still complete with results bit-identical
        # to the serial backend, and record the degradation.
        baseline = self._detect(data)
        faulted = self._detect(
            data,
            counting=faulty_backend(
                chunk_size=8, fault_plan=FaultPlan(kill_worker_on_chunk=1)
            ),
        )
        assert [
            (p.subspace.dims, p.subspace.ranges, p.count, p.coefficient)
            for p in baseline.projections
        ] == [
            (p.subspace.dims, p.subspace.ranges, p.count, p.coefficient)
            for p in faulted.projections
        ]
        np.testing.assert_array_equal(
            baseline.outlier_indices, faulted.outlier_indices
        )
        health = faulted.stats["backend_health"]
        assert health["fallbacks"] >= 1
        assert faulted.backend_degraded
        assert not baseline.backend_degraded

    def test_level_batch_brute_force_with_kill(self, cells, serial_counts):
        # The level-batched brute force is the other count_batch
        # consumer; run it straight against a kill plan.
        from repro.search.brute_force import BruteForceSearch

        def mine(backend=None):
            counter = CubeCounter(cells, backend=backend)
            try:
                outcome = BruteForceSearch(
                    counter, 2, n_projections=6, strategy="level_batch"
                ).run()
                return outcome, counter.backend_health()
            finally:
                counter.close()

        baseline, _ = mine()
        faulted, health = mine(
            faulty_backend(
                chunk_size=8, fault_plan=FaultPlan(kill_worker_on_chunk=1)
            )
        )
        assert [
            (p.subspace.dims, p.subspace.ranges, p.count)
            for p in baseline.projections
        ] == [
            (p.subspace.dims, p.subspace.ranges, p.count)
            for p in faulted.projections
        ]
        assert health["fallbacks"] >= 1

    def test_clean_detect_records_no_degradation(self, data):
        result = self._detect(data, counting=faulty_backend(chunk_size=8))
        health = result.stats["backend_health"]
        assert health["retries"] == 0
        assert health["rebuilds"] == 0
        assert health["fallbacks"] == 0
        assert not result.backend_degraded


class TestCloseIdempotency:
    """Regression (PR 2): close() must be safe under a broken executor."""

    def test_pool_close_is_idempotent(self, cells):
        counter = CubeCounter(cells, backend=faulty_backend())
        pool = counter._ensure_pool()
        assert pool is not None
        pool.close()
        pool.close()  # second close is a no-op, not an error
        counter.close()
        counter.close()

    def test_close_after_broken_executor_does_not_hang(self, cells):
        stack = CubeCounter(cells)._stack
        backend = faulty_backend(fault_plan=FaultPlan(kill_worker_on_chunk=0))
        pool = CountingPool(stack, False, backend, BackendHealth())
        dims = np.zeros((1, 1), dtype=np.intp)
        rngs = np.zeros((1, 1), dtype=np.intp)
        # Bypass the resilient dispatcher to leave the executor broken.
        future = pool._executor.submit(_count_chunk, (0, 1, dims, rngs))
        with pytest.raises(BrokenExecutor):
            future.result(timeout=60)
        start = time.perf_counter()
        pool.close()
        pool.close()
        assert time.perf_counter() - start < 30.0
        assert pool.is_degraded

    def test_counter_close_after_degraded_run(self, cells, cubes, serial_counts):
        backend = faulty_backend(
            fault_plan=FaultPlan(kill_worker_on_chunk=0), max_rebuilds=0
        )
        counter = CubeCounter(cells, backend=backend)
        try:
            assert counter.count_batch(cubes).tolist() == serial_counts
        finally:
            counter.close()
            counter.close()
        # The degraded pool was released mid-run; later batches must
        # still answer (plain serial path), without resurrecting it.
        assert counter.count_batch(cubes).tolist() == serial_counts
        assert counter._pool is None


@pytest.mark.slow
class TestChaosSweep:
    """Randomized multi-scenario sweep (run with ``-m slow``)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_grid_random_fault(self, seed):
        rng = np.random.default_rng(5000 + seed)
        cells = make_cells(
            seed=5000 + seed,
            n=int(rng.integers(40, 200)),
            d=int(rng.integers(3, 6)),
            phi=int(rng.integers(2, 4)),
            missing=float(rng.choice([0.0, 0.15])),
        )
        cubes = all_cubes(cells.n_dims, cells.n_ranges, 3)
        serial = CubeCounter(cells)
        try:
            expected = serial.count_batch(cubes).tolist()
        finally:
            serial.close()
        # Size chunks off the batch so every run dispatches at least
        # three of them — otherwise a small random grid could leave the
        # killed chunk id (or the whole pool) undispatched and the
        # degradation assertion below would be vacuous.
        chunk_size = max(1, len(cubes) // int(rng.integers(3, 7)))
        plans = [
            FaultPlan(kill_worker_on_chunk=int(rng.integers(0, 3))),
            FaultPlan(fail_shm_attach_once=True),
            FaultPlan(
                kill_worker_on_chunk=int(rng.integers(0, 3)),
                fail_shm_attach_once=True,
            ),
        ]
        plan = plans[seed % len(plans)]
        backend = faulty_backend(chunk_size=chunk_size, fault_plan=plan)
        counts, health = run_batch(cells, cubes, backend)
        assert counts == expected
        assert health["rebuilds"] >= 1 or health["pool_degraded"]
