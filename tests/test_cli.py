"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_requires_source(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect"])

    def test_detect_sources_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["detect", "--csv", "x.csv", "--dataset", "machine"]
            )


class TestDatasetsCommand:
    def test_lists_builtin(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "machine" in out
        assert "arrhythmia" in out


class TestDetectCommand:
    def test_builtin_dataset(self, capsys):
        code = main(
            [
                "detect",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--top",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Subspace outlier detection report" in out
        assert "Top 3 outliers" in out

    def test_csv_input(self, tmp_path, capsys, rng):
        path = tmp_path / "data.csv"
        rows = ["a,b,c"]
        for row in rng.normal(size=(80, 3)):
            rows.append(",".join(f"{v:.4f}" for v in row))
        path.write_text("\n".join(rows) + "\n")
        code = main(
            [
                "detect",
                "--csv",
                str(path),
                "--method",
                "brute_force",
                "--phi",
                "4",
                "-k",
                "2",
            ]
        )
        assert code == 0
        assert "report" in capsys.readouterr().out

    def test_mmap_dir_out_of_core(self, tmp_path, capsys):
        # --mmap-dir routes counting through the sharded store; the
        # report must be byte-identical to the in-memory run and the
        # store directory must hold the packed shards afterwards.
        args = [
            "detect",
            "--dataset",
            "machine",
            "--method",
            "brute_force",
            "--seed",
            "0",
            "--top",
            "3",
        ]
        assert main(args) == 0
        reference = capsys.readouterr().out
        store = tmp_path / "store"
        assert main(args + ["--mmap-dir", str(store), "--shard-rows", "64"]) == 0
        assert capsys.readouterr().out == reference
        assert (store / "manifest.json").exists()
        assert any(store.glob("shard_*.bin"))

    def test_shard_rows_requires_mmap_dir(self, capsys):
        code = main(
            ["detect", "--dataset", "machine", "--shard-rows", "64"]
        )
        assert code != 0
        assert "mmap_dir" in capsys.readouterr().err

    def test_evolutionary_options(self, capsys):
        code = main(
            [
                "detect",
                "--dataset",
                "machine",
                "--population",
                "16",
                "--generations",
                "10",
                "--seed",
                "1",
            ]
        )
        assert code == 0

    def test_missing_csv_is_graceful_error(self, capsys):
        code = main(["detect", "--csv", "/nonexistent.csv"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestExplainCommand:
    def test_explains_point(self, capsys):
        code = main(
            [
                "explain",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--point",
                "0",
            ]
        )
        assert code == 0
        assert "point 0" in capsys.readouterr().out


class TestSweepCommand:
    def test_phi_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset",
                "machine",
                "--parameter",
                "n_ranges",
                "--values",
                "3",
                "4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "n_ranges" in out
        assert "quality" in out

    def test_m_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--dataset",
                "machine",
                "--parameter",
                "n_projections",
                "--values",
                "5",
                "10",
                "-k",
                "2",
            ]
        )
        assert code == 0


class TestExportCommand:
    def test_csv_roundtrip(self, tmp_path, capsys):
        out_path = tmp_path / "machine.csv"
        code = main(
            ["export", "--dataset", "machine", "--format", "csv", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        from repro.data import load_csv

        back = load_csv(out_path)
        assert back.n_points == 209

    def test_arff(self, tmp_path):
        out_path = tmp_path / "machine.arff"
        code = main(
            ["export", "--dataset", "machine", "--format", "arff", "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.read_text().startswith("@relation")


class TestTable1Command:
    def test_single_dataset(self, capsys):
        code = main(
            [
                "table1",
                "--datasets",
                "machine",
                "--brute-budget",
                "30",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "machine (8)" in out
        assert "Gen^o" in out


class TestScoreCommand:
    """The incremental serving endpoint: score / --in / --update."""

    @pytest.fixture()
    def served(self, tmp_path, rng):
        import numpy as np

        from repro.core.detector import SubspaceOutlierDetector
        from repro.persist import save_model

        data = rng.normal(size=(120, 4))
        data[:, 1] += 1.5 * data[:, 0]

        def write_csv(name, rows):
            path = tmp_path / name
            lines = ["a,b,c,d"]
            for row in rows:
                lines.append(",".join(f"{v:.5f}" for v in row))
            path.write_text("\n".join(lines) + "\n")
            return path

        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=4, method="brute_force"
        )
        detector.detect(data)
        model_path = save_model(detector, tmp_path / "model.json")
        return {
            "model": model_path,
            "primary": write_csv("primary.csv", rng.normal(size=(40, 4))),
            "extra": write_csv("extra.csv", rng.normal(size=(25, 4))),
            "tmp_path": tmp_path,
        }

    def test_score_batch(self, served, capsys):
        code = main(
            ["score", "--model", str(served["model"]),
             "--csv", str(served["primary"])]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "of 40 points covered" in out

    def test_extra_batches_via_in(self, served, capsys):
        code = main(
            ["score", "--model", str(served["model"]),
             "--csv", str(served["primary"]),
             "--in", str(served["extra"])]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"--- {served['extra']}" in out
        assert "of 25 points covered" in out

    def test_update_absorbs_and_saves_back(self, served, capsys):
        from repro.persist import load_model

        before = load_model(served["model"])
        code = main(
            ["score", "--model", str(served["model"]),
             "--csv", str(served["primary"]), "--update"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "model updated (+40 rows" in err
        after = load_model(served["model"])
        assert after.version == before.version + 1
        assert after.n_points == before.n_points + 40
        assert after.stats_dict()["updates"] == 1

    def test_trace_file_streams_registered_events(self, served):
        import json as jsonlib

        trace = served["tmp_path"] / "trace.jsonl"
        code = main(
            ["score", "--model", str(served["model"]),
             "--csv", str(served["primary"]),
             "--in", str(served["extra"]),
             "--update", "--trace-file", str(trace)]
        )
        assert code == 0
        events = [jsonlib.loads(line) for line in trace.read_text().splitlines()]
        types = [e["type"] for e in events]
        assert types.count("score_request") == 2
        assert types.count("model_updated") >= 2

    def test_missing_model_is_graceful_error(self, served, capsys):
        code = main(
            ["score", "--model", str(served["tmp_path"] / "none.json"),
             "--csv", str(served["primary"])]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
