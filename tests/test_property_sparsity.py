"""Property-based tests: sparsity-coefficient and equi-depth invariants.

Hypothesis hunts the algebraic corners the example-based suites cannot
enumerate:

* Equation 1 is strictly monotone in ``n(D)`` (emptier cube ⇒ more
  negative coefficient), vanishes at the exact null expectation
  ``N·f^k``, and agrees between its scalar and vectorized forms — and
  at ``n(D) = 0`` with §2.4's closed-form empty-cube bound.
* The equi-depth discretizer balances its buckets (no bucket above
  ``ceil(n/φ)`` for distinct values), keeps ties together, maps NaN to
  the missing sentinel, and stays a partition of the observed rows no
  matter how pathological the tie structure.
* The counting kernels' core identity — popcount(AND of membership
  masks) equals the brute boolean-intersection count — holds for
  arbitrary mask widths (ragged final words included), all-zero and
  all-one masks, on every kernel tier the native backend can select.
"""

from __future__ import annotations

import math
import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp
import pytest

from repro.core.params import empty_cube_sparsity
from repro.core.subspace import Subspace
from repro.grid.cells import MISSING_CELL, CellAssignment
from repro.grid.discretizer import EquiDepthDiscretizer, StreamingReservoir
from repro.grid.kernels import batch_counts
from repro.grid.native import available_tiers, forced_tier, native_batch_counts
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.sharded import ShardedCounter, ShardedMaskStore
from repro.sparsity.coefficient import (
    expected_count,
    sparsity_coefficient,
    sparsity_coefficients,
)

# Keep N, φ, k in ranges where Equation 1's arithmetic is far from any
# float precision cliff (N·f^k spans ~1e-6 .. 1e6 here).
n_points_st = st.integers(min_value=2, max_value=1_000_000)
phi_st = st.integers(min_value=2, max_value=20)
k_st = st.integers(min_value=1, max_value=6)


class TestSparsityCoefficientInvariants:
    @settings(max_examples=200, deadline=None)
    @given(n_points=n_points_st, phi=phi_st, k=k_st, data=st.data())
    def test_strictly_monotone_in_count(self, n_points, phi, k, data):
        low = data.draw(st.integers(0, n_points - 1), label="low")
        high = data.draw(st.integers(low + 1, n_points), label="high")
        s_low = sparsity_coefficient(low, n_points, phi, k)
        s_high = sparsity_coefficient(high, n_points, phi, k)
        assert s_low < s_high

    @settings(max_examples=200, deadline=None)
    @given(phi=phi_st, k=st.integers(1, 5), mult=st.integers(1, 50))
    def test_zero_at_exact_expectation(self, phi, k, mult):
        # N = m·φ^k makes the expectation exactly m points; a cube
        # holding exactly its expectation is not abnormal at all.
        n_points = mult * phi**k
        expected = expected_count(n_points, phi, k)
        assert math.isclose(expected, mult, rel_tol=1e-12)
        assert abs(sparsity_coefficient(mult, n_points, phi, k)) < 1e-9

    @settings(max_examples=200, deadline=None)
    @given(n_points=n_points_st, phi=phi_st, k=k_st, data=st.data())
    def test_sign_matches_side_of_expectation(self, n_points, phi, k, data):
        count = data.draw(st.integers(0, n_points), label="count")
        coefficient = sparsity_coefficient(count, n_points, phi, k)
        expected = expected_count(n_points, phi, k)
        if count < expected:
            assert coefficient < 0
        elif count > expected:
            assert coefficient > 0

    @settings(max_examples=100, deadline=None)
    @given(n_points=n_points_st, phi=phi_st, k=k_st)
    def test_empty_cube_matches_closed_form(self, n_points, phi, k):
        # S(n=0) must equal §2.4's bound −sqrt(N / (φ^k − 1)), which is
        # derived independently in params.py.
        direct = sparsity_coefficient(0, n_points, phi, k)
        closed = empty_cube_sparsity(n_points, phi, k)
        assert math.isclose(direct, closed, rel_tol=1e-12)
        # ...and it is the minimum over all attainable counts.
        assert direct < sparsity_coefficient(1, n_points, phi, k)

    @settings(max_examples=100, deadline=None)
    @given(n_points=n_points_st, phi=phi_st, k=k_st, data=st.data())
    def test_vectorized_matches_scalar(self, n_points, phi, k, data):
        counts = data.draw(
            st.lists(st.integers(0, n_points), min_size=1, max_size=20),
            label="counts",
        )
        vectorized = sparsity_coefficients(np.array(counts), n_points, phi, k)
        scalar = [sparsity_coefficient(c, n_points, phi, k) for c in counts]
        np.testing.assert_allclose(vectorized, scalar, rtol=1e-12, atol=0)


# Columns with adversarial tie structure: drawn from a tiny alphabet of
# finite floats (many exact duplicates), optionally salted with NaN.
_tied_column = st.lists(
    st.one_of(
        st.sampled_from([-2.0, -1.0, -0.5, 0.0, 0.25, 1.0, 3.0]),
        st.floats(
            min_value=-100, max_value=100, allow_nan=False, allow_infinity=False
        ),
        st.just(float("nan")),
    ),
    min_size=2,
    max_size=120,
)


class TestEquiDepthBucketBalance:
    @settings(max_examples=150, deadline=None)
    @given(data=st.data(), phi=st.integers(2, 10))
    def test_distinct_values_balance(self, data, phi):
        # With all-distinct values, no bucket may exceed ceil(n/φ):
        # that is what "equi-depth" means.
        values = data.draw(
            st.lists(
                st.integers(-10_000, 10_000),
                min_size=2,
                max_size=200,
                unique=True,
            ),
            label="values",
        )
        column = np.array(values, dtype=float).reshape(-1, 1)
        cells = EquiDepthDiscretizer(phi).fit_transform(column)
        counts = np.bincount(cells.codes[:, 0], minlength=phi)
        assert int(counts.sum()) == len(values)
        assert int(counts.max()) <= math.ceil(len(values) / phi)

    @settings(max_examples=150, deadline=None)
    @given(column=_tied_column, phi=st.integers(2, 8))
    def test_partition_under_ties_and_missing(self, column, phi):
        array = np.array(column, dtype=float).reshape(-1, 1)
        observed = ~np.isnan(array[:, 0])
        if not observed.any():
            return  # all-missing columns are covered below
        codes = EquiDepthDiscretizer(phi).fit_transform(array).codes[:, 0]
        # NaN ⇒ the missing sentinel, observed ⇒ a valid range: exactly.
        assert np.all(codes[~observed] == MISSING_CELL)
        assert np.all(codes[observed] >= 0)
        assert np.all(codes[observed] < phi)
        # The observed rows are partitioned: bucket counts resum to n.
        counts = np.bincount(codes[observed], minlength=phi)
        assert int(counts.sum()) == int(observed.sum())

    @settings(max_examples=150, deadline=None)
    @given(column=_tied_column, phi=st.integers(2, 8))
    def test_ties_share_a_bucket(self, column, phi):
        # Equal values are indistinguishable to a rank-based grid, so
        # they must land in the same range — never split across a cut.
        array = np.array(column, dtype=float).reshape(-1, 1)
        codes = EquiDepthDiscretizer(phi).fit_transform(array).codes[:, 0]
        by_value: dict[float, set] = {}
        for value, code in zip(array[:, 0], codes, strict=True):
            if not np.isnan(value):
                by_value.setdefault(value, set()).add(int(code))
        for value, buckets in by_value.items():
            assert len(buckets) == 1, f"value {value} split across {buckets}"

    @settings(max_examples=150, deadline=None)
    @given(column=_tied_column, phi=st.integers(2, 8))
    def test_codes_monotone_in_value(self, column, phi):
        # Rank-based grids preserve order: a larger value never gets a
        # smaller range code.
        array = np.array(column, dtype=float).reshape(-1, 1)
        codes = EquiDepthDiscretizer(phi).fit_transform(array).codes[:, 0]
        observed = ~np.isnan(array[:, 0])
        values = array[observed, 0]
        kept = codes[observed]
        order = np.argsort(values, kind="stable")
        assert np.all(np.diff(kept[order]) >= 0)

    def test_all_missing_column_is_all_sentinel(self):
        array = np.full((10, 1), np.nan)
        codes = EquiDepthDiscretizer(4).fit_transform(array).codes[:, 0]
        assert np.all(codes == MISSING_CELL)


# ----------------------------------------------------------------------
# popcount kernel identity
# ----------------------------------------------------------------------
def _pack_stack(stack: np.ndarray) -> np.ndarray:
    """Pack a boolean (d, φ, N) stack the way PackedCubeCounter does:
    bits along the point axis, rows padded to a uint64 boundary (the
    padding stays zero), viewed as uint64 words."""
    d, phi, n = stack.shape
    n_bytes = -(-n // 8)
    n_words = -(-n_bytes // 8)
    packed8 = np.zeros((d, phi, n_words * 8), dtype=np.uint8)
    packed8[:, :, :n_bytes] = np.packbits(stack, axis=-1)
    return packed8.view(np.uint64)


def _brute_counts(stack, dims_arr, rng_arr):
    """The defining identity's right-hand side: materialize the boolean
    intersection per cube and count True rows."""
    out = []
    for dims, rngs in zip(dims_arr, rng_arr, strict=True):
        acc = np.ones(stack.shape[2], dtype=bool)
        for dim, rng in zip(dims, rngs, strict=True):
            acc &= stack[dim, rng]
        out.append(int(acc.sum()))
    return out


class TestPopcountKernelIdentity:
    """popcount(AND of masks) == brute boolean intersection — for every
    kernel the backend registry can select, on arbitrary mask widths
    (ragged final words included) and degenerate all-zero / all-one
    masks."""

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_brute_intersection(self, data):
        n = data.draw(st.integers(1, 150), label="n_points")
        d = data.draw(st.integers(1, 3), label="d")
        phi = data.draw(st.integers(1, 3), label="phi")
        stack = data.draw(hnp.arrays(np.bool_, (d, phi, n)), label="stack")
        k = data.draw(st.integers(1, d), label="k")
        n_cubes = data.draw(st.integers(1, 6), label="n_cubes")
        dims_arr = np.empty((n_cubes, k), dtype=np.int64)
        rng_arr = np.empty((n_cubes, k), dtype=np.int64)
        for i in range(n_cubes):
            order = data.draw(st.permutations(range(d)), label=f"dims{i}")
            dims_arr[i] = sorted(order[:k])
            for j in range(k):
                rng_arr[i, j] = data.draw(
                    st.integers(0, phi - 1), label=f"rng{i}.{j}"
                )
        expected = _brute_counts(stack, dims_arr, rng_arr)
        packed = _pack_stack(stack)
        ref_bool, _ = batch_counts(stack, dims_arr, rng_arr, packed=False)
        ref_packed, _ = batch_counts(packed, dims_arr, rng_arr, packed=True)
        assert ref_bool.tolist() == expected
        assert ref_packed.tolist() == expected
        for tier in available_tiers():
            with forced_tier(tier):
                got_bool, _ = native_batch_counts(
                    stack, dims_arr, rng_arr, False
                )
                got_packed, _ = native_batch_counts(
                    packed, dims_arr, rng_arr, True
                )
            assert got_bool.tolist() == expected, tier
            assert got_packed.tolist() == expected, tier

    @pytest.mark.parametrize("n", [1, 7, 63, 64, 65, 127, 200])
    @pytest.mark.parametrize("fill", [False, True], ids=["zeros", "ones"])
    def test_degenerate_masks_at_ragged_widths(self, n, fill):
        # All-zero and all-one stacks at widths straddling word
        # boundaries: counts must be exactly 0 or exactly n, and the
        # zero padding in the ragged final word must stay inert.
        stack = np.full((2, 2, n), fill, dtype=bool)
        dims_arr = np.array([[0, 1], [0, 1]], dtype=np.int64)
        rng_arr = np.array([[0, 1], [1, 0]], dtype=np.int64)
        expected = [n if fill else 0] * 2
        packed = _pack_stack(stack)
        for tier in available_tiers():
            with forced_tier(tier):
                got_bool, _ = native_batch_counts(
                    stack, dims_arr, rng_arr, False
                )
                got_packed, _ = native_batch_counts(
                    packed, dims_arr, rng_arr, True
                )
            assert got_bool.tolist() == expected, tier
            assert got_packed.tolist() == expected, tier


# ----------------------------------------------------------------------
# out-of-core invariants: streamed fits and shard-merged counts
# ----------------------------------------------------------------------
def _split_chunks(array: np.ndarray, cuts: list[int]):
    """Re-block *array*'s rows at the given sorted cut positions."""
    bounds = [0, *cuts, array.shape[0]]
    return [array[lo:hi] for lo, hi in zip(bounds, bounds[1:])]


_chunkable_matrix = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 80), st.integers(1, 3)),
    elements=st.floats(
        min_value=-1000, max_value=1000, allow_nan=False, allow_infinity=False
    ),
)


class TestStreamedFitAgreement:
    """fit_from_chunks must agree with fit() on the rows it saw."""

    @settings(max_examples=80, deadline=None)
    @given(data=st.data(), phi=st.integers(2, 6))
    def test_small_stream_fits_exactly(self, data, phi):
        # While the stream fits in the reservoir, the streamed fit is
        # *exactly* the in-memory fit — identical cut points, for any
        # chunking of the same rows.
        array = data.draw(_chunkable_matrix, label="rows")
        cuts = data.draw(
            st.lists(st.integers(0, array.shape[0]), max_size=4).map(sorted),
            label="cuts",
        )
        whole = EquiDepthDiscretizer(phi).fit(array)
        streamed = EquiDepthDiscretizer(phi).fit_from_chunks(
            _split_chunks(array, cuts), sample_size=array.shape[0]
        )
        for a, b in zip(whole.boundaries, streamed.boundaries, strict=True):
            np.testing.assert_array_equal(a, b)

    @settings(max_examples=80, deadline=None)
    @given(data=st.data(), capacity=st.integers(1, 30))
    def test_reservoir_invariant_to_chunking(self, data, capacity):
        # Beyond the fill, the reservoir draws one variate per row — so
        # any two chunkings of the same row sequence sample the exact
        # same rows, and the fits over them are identical.
        array = data.draw(_chunkable_matrix, label="rows")
        cuts_a = data.draw(
            st.lists(st.integers(0, array.shape[0]), max_size=4).map(sorted),
            label="cuts_a",
        )
        cuts_b = data.draw(
            st.lists(st.integers(0, array.shape[0]), max_size=4).map(sorted),
            label="cuts_b",
        )
        first = StreamingReservoir(capacity, random_state=3)
        second = StreamingReservoir(capacity, random_state=3)
        for chunk in _split_chunks(array, cuts_a):
            first.update(chunk)
        for chunk in _split_chunks(array, cuts_b):
            second.update(chunk)
        np.testing.assert_array_equal(first.rows, second.rows)
        assert first.n_seen == second.n_seen == array.shape[0]

    @settings(max_examples=80, deadline=None)
    @given(data=st.data(), capacity=st.integers(1, 20))
    def test_reservoir_rows_come_from_the_stream(self, data, capacity):
        array = data.draw(_chunkable_matrix, label="rows")
        reservoir = StreamingReservoir(capacity, random_state=1)
        reservoir.update(array)
        rows = reservoir.rows
        assert rows.shape[0] == min(capacity, array.shape[0])
        seen = {tuple(row) for row in array}
        for row in rows:
            assert tuple(row) in seen


class TestShardMergeIdentity:
    """Shard-merged counts == whole-array counts, for arbitrary splits.

    The algebraic heart of the out-of-core path: popcounts are additive
    across row shards, so *any* shard_rows choice must reproduce the
    in-memory packed counter's numbers exactly — missing codes, ragged
    final shards and single-row shards included.
    """

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_sharded_counts_match_in_memory(self, data):
        n = data.draw(st.integers(1, 120), label="n_points")
        d = data.draw(st.integers(1, 3), label="d")
        phi = data.draw(st.integers(2, 4), label="phi")
        codes = data.draw(
            hnp.arrays(
                np.int16, (n, d), elements=st.integers(-1, phi - 1)
            ),
            label="codes",
        )
        shard_rows = data.draw(st.integers(1, n), label="shard_rows")
        cells = CellAssignment(codes=codes, n_ranges=phi)
        k = data.draw(st.integers(1, d), label="k")
        n_cubes = data.draw(st.integers(1, 5), label="n_cubes")
        cubes = []
        for i in range(n_cubes):
            dims = tuple(
                sorted(data.draw(st.permutations(range(d)), label=f"dims{i}")[:k])
            )
            rngs = tuple(
                data.draw(st.integers(0, phi - 1), label=f"rng{i}.{j}")
                for j in range(k)
            )
            cubes.append(Subspace(dims, rngs))
        memory = PackedCubeCounter(cells, cache_size=0)
        expected = memory.count_batch(cubes).tolist()
        memory.close()
        with tempfile.TemporaryDirectory() as tmp:
            store = ShardedMaskStore.build(cells, tmp, shard_rows=shard_rows)
            assert store.n_shards == -(-n // shard_rows)
            sharded = ShardedCounter(store, cache_size=0)
            try:
                assert sharded.count_batch(cubes).tolist() == expected
            finally:
                sharded.close()
