"""Tests for the mutation operator (Figure 6)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.search.evolutionary.encoding import (
    Solution,
    WILDCARD_GENE,
    random_solution,
)
from repro.search.evolutionary.mutation import BalancedMutation


class TestDimensionalityPreservation:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(0, 5000), k=st.integers(1, 6))
    def test_property_k_never_changes(self, seed, k):
        """The paper's invariant: mutation preserves projection dimensionality."""
        rng = np.random.default_rng(seed)
        mutation = BalancedMutation(1.0, 1.0, n_ranges=5)
        s = random_solution(8, min(k, 8), 5, rng)
        mutated = mutation.mutate(s, rng)
        assert mutated.dimensionality == s.dimensionality

    def test_population_apply_preserves_all(self):
        rng = np.random.default_rng(1)
        mutation = BalancedMutation(0.8, 0.8, n_ranges=4)
        population = [random_solution(10, 3, 4, rng) for _ in range(30)]
        mutated = mutation.apply(population, rng)
        assert len(mutated) == 30
        assert all(m.dimensionality == 3 for m in mutated)


class TestTypeOne:
    def test_swap_moves_a_dimension(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(1.0, 0.0, n_ranges=5)
        s = Solution([0, WILDCARD_GENE, WILDCARD_GENE])
        changed = 0
        for _ in range(50):
            m = mutation.mutate(s, rng)
            assert m.dimensionality == 1
            if m.fixed_positions != s.fixed_positions:
                changed += 1
        assert changed > 0

    def test_skipped_when_no_wildcards(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(1.0, 0.0, n_ranges=5)
        s = Solution([0, 1, 2])  # k == d, Q empty
        assert mutation.mutate(s, rng).dimensionality == 3

    def test_skipped_when_all_wildcards(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(1.0, 0.0, n_ranges=5)
        s = Solution([WILDCARD_GENE, WILDCARD_GENE])
        assert mutation.mutate(s, rng) == s


class TestTypeTwo:
    def test_flip_changes_value_not_position(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(0.0, 1.0, n_ranges=5)
        s = Solution([2, WILDCARD_GENE])
        for _ in range(20):
            m = mutation.mutate(s, rng)
            assert m.fixed_positions == (0,)
            assert m.genes[0] != WILDCARD_GENE

    def test_flip_always_different_value(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(0.0, 1.0, n_ranges=5)
        s = Solution([2, WILDCARD_GENE])
        for _ in range(30):
            m = mutation.mutate(s, rng)
            assert m.genes[0] != 2

    def test_flip_noop_when_phi_one(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(0.0, 1.0, n_ranges=1)
        s = Solution([0, WILDCARD_GENE])
        assert mutation.mutate(s, rng) == s


class TestProbabilities:
    def test_zero_probabilities_identity(self):
        rng = np.random.default_rng(0)
        mutation = BalancedMutation(0.0, 0.0, n_ranges=5)
        s = random_solution(6, 2, 5, rng)
        assert mutation.mutate(s, rng) is s

    def test_rates_roughly_respected(self):
        rng = np.random.default_rng(9)
        mutation = BalancedMutation(0.3, 0.0, n_ranges=50)
        s = Solution([5] + [WILDCARD_GENE] * 9)
        changed = sum(mutation.mutate(s, rng) != s for _ in range(500))
        assert 100 < changed < 200  # ~150 expected

    def test_invalid_probability_rejected(self):
        with pytest.raises(Exception):
            BalancedMutation(1.5, 0.0, n_ranges=5)

    def test_invalid_phi_rejected(self):
        with pytest.raises(ValueError):
            BalancedMutation(0.5, 0.5, n_ranges=0)

    def test_new_values_in_range(self):
        rng = np.random.default_rng(3)
        mutation = BalancedMutation(1.0, 1.0, n_ranges=3)
        s = random_solution(6, 3, 3, rng)
        for _ in range(50):
            s = mutation.mutate(s, rng)
            assert all(g == WILDCARD_GENE or 0 <= g < 3 for g in s.genes)
