"""Generate the fixed-seed golden results for the engine-refactor differential test.

Run from the repository root::

    PYTHONPATH=src python tests/golden/generate_engine_golden.py

The JSON files written next to this script were produced by the
pre-refactor search path (PR 3); ``tests/test_engine_differential.py``
asserts that the engine-protocol path reproduces them bit-identically.
Volatile stats (wall-clock timings, counter throughput, backend health)
are stripped — everything that is deterministic for a fixed seed is kept.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import numpy as np

GOLDEN_DIR = Path(__file__).parent / "engine_refactor"

#: Stats keys that legitimately vary run-to-run (timings, telemetry).
VOLATILE_STATS = (
    "elapsed_seconds",
    "total_elapsed_seconds",
    "counter_stats",
    "backend_health",
)


def scrub_stats(stats: dict) -> dict:
    """Drop volatile stats but remember which keys were present."""
    cleaned = {k: v for k, v in stats.items() if k not in VOLATILE_STATS}
    cleaned["_stats_keys"] = sorted(stats)
    return cleaned


def scrub_result(payload: dict) -> dict:
    payload = dict(payload)
    payload["stats"] = scrub_stats(dict(payload.get("stats", {})))
    return payload


def make_data(seed: int = 0, n: int = 160, d: int = 8) -> np.ndarray:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(n, d))
    # Plant a handful of clear outliers so the mined cubes are stable.
    data[:5] += rng.normal(loc=6.0, scale=0.1, size=(5, d))
    return data


def scenarios():
    from repro.core.detector import SubspaceOutlierDetector
    from repro.core.multik import detect_across_dimensionalities
    from repro.persist import result_to_dict
    from repro.search.evolutionary.config import EvolutionaryConfig

    data = make_data()
    config = EvolutionaryConfig(population_size=30, max_generations=15)

    def evolutionary():
        detector = SubspaceOutlierDetector(
            dimensionality=3, n_ranges=5, n_projections=10,
            method="evolutionary", config=config, random_state=0,
        )
        return scrub_result(result_to_dict(detector.detect(data)))

    def brute_force_depth_first():
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, n_projections=10,
            method="brute_force", random_state=0,
        )
        return scrub_result(result_to_dict(detector.detect(data)))

    def brute_force_level_batch(tmp_dir: Path):
        from repro.run.controller import RunController

        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, n_projections=10,
            method="brute_force", random_state=0,
            controller=RunController(checkpoint_dir=tmp_dir / "bf_ckpt"),
        )
        return scrub_result(result_to_dict(detector.detect(data)))

    def evolutionary_checkpointed(tmp_dir: Path):
        from repro.run.controller import RunController

        detector = SubspaceOutlierDetector(
            dimensionality=3, n_ranges=5, n_projections=10,
            method="evolutionary", config=config, random_state=7,
            controller=RunController(checkpoint_dir=tmp_dir / "evo_ckpt"),
        )
        return scrub_result(result_to_dict(detector.detect(data)))

    def multik():
        outcome = detect_across_dimensionalities(
            data,
            [1, 2],
            detector_kwargs={
                "n_ranges": 5,
                "n_projections": 8,
                "method": "evolutionary",
                "config": config,
                "random_state": 3,
            },
        )
        return {
            "stopped_reason": outcome.stopped_reason,
            "results": {
                str(k): scrub_result(result_to_dict(result))
                for k, result in outcome.results.items()
            },
        }

    return {
        "evolutionary": evolutionary,
        "brute_force_depth_first": brute_force_depth_first,
        "brute_force_level_batch": brute_force_level_batch,
        "evolutionary_checkpointed": evolutionary_checkpointed,
        "multik": multik,
    }


def main() -> int:
    import inspect
    import tempfile

    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, build in scenarios().items():
        with tempfile.TemporaryDirectory() as tmp:
            if inspect.signature(build).parameters:
                payload = build(Path(tmp))
            else:
                payload = build()
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
