"""End-to-end integration tests reproducing the paper's core claims.

These are scaled-down versions of the benchmark experiments; the full
protocol lives in ``benchmarks/``.
"""

import numpy as np
import pytest

from repro import (
    EvolutionaryConfig,
    SubspaceOutlierDetector,
)
from repro.baselines.knn import KNNDistanceOutlierDetector
from repro.data.registry import load_dataset
from repro.data.preprocess import inject_missing_values, mean_impute
from repro.eval.metrics import rare_class_report, recall_of_planted


@pytest.fixture(scope="module")
def figure1():
    return load_dataset("figure1_views")


class TestFigure1Claim:
    """Subspace mining exposes view-local outliers that kNN misses."""

    def test_subspace_method_top_ranks_planted(self, figure1):
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=5,
            n_projections=10,
            config=EvolutionaryConfig(
                population_size=60, max_generations=60, restarts=4
            ),
            random_state=0,
        )
        result = detector.detect(figure1.values)
        planted = set(figure1.planted_outliers.tolist())
        # Both planted points are flagged, with scores in the most
        # abnormal tier (they sit in count-1 cubes of the structured
        # views, the most negative coefficient any non-empty cube of
        # this grid can attain).
        assert planted <= set(result.outlier_indices.tolist())
        best = result.best_coefficient
        for point in planted:
            assert result.point_score(point) == pytest.approx(best)

    def test_planted_points_masked_in_full_dimensional_distance(self, figure1):
        # The planted outliers are *not* among the top full-dimensional
        # kNN outliers: every coordinate is marginally normal and the
        # noise dimensions dominate the metric.
        scores = KNNDistanceOutlierDetector(n_neighbors=1).scores(figure1.values)
        ranks = np.argsort(-scores)  # most outlying first
        planted = set(figure1.planted_outliers.tolist())
        assert not (planted & set(ranks[:4].tolist()))

    def test_mined_views_are_the_structured_ones(self, figure1):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, n_projections=4, method="brute_force"
        )
        result = detector.detect(figure1.values)
        mined_dims = {p.subspace.dims for p in result.projections}
        assert (0, 1) in mined_dims or (2, 3) in mined_dims


class TestArrhythmiaClaim:
    """Rare classes are over-represented among subspace outliers (§3.1)."""

    @pytest.fixture(scope="class")
    def experiment(self):
        dataset = load_dataset("arrhythmia")
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=int(dataset.metadata["phi"]),
            n_projections=None,
            threshold=-3.0,
            config=EvolutionaryConfig(
                population_size=80, max_generations=60, restarts=6
            ),
            random_state=0,
        )
        result = detector.detect(dataset.values)
        return dataset, result

    def test_finds_projections_at_minus_three(self, experiment):
        _, result = experiment
        assert len(result.projections) > 0
        assert all(p.coefficient <= -3.0 for p in result.projections)

    def test_rare_classes_enriched(self, experiment):
        dataset, result = experiment
        report = rare_class_report(
            result.outlier_indices,
            dataset.labels,
            dataset.metadata["rare_classes"],
        )
        # Base rate is 14.6%; the subspace method must concentrate rare
        # classes well above it (paper: 43/85 ≈ 51%, a 3.5x lift).
        assert report.lift > 1.5

    def test_beats_knn_baseline(self, experiment):
        dataset, result = experiment
        n_flagged = result.n_outliers
        assert n_flagged > 0
        knn = KNNDistanceOutlierDetector(
            n_neighbors=1, n_outliers=n_flagged
        ).detect(mean_impute(dataset.values))
        subspace_report = rare_class_report(
            result.outlier_indices, dataset.labels, dataset.metadata["rare_classes"]
        )
        knn_report = rare_class_report(
            knn.outlier_indices, dataset.labels, dataset.metadata["rare_classes"]
        )
        assert subspace_report.n_rare_hits > knn_report.n_rare_hits


class TestHousingClaim:
    """The planted contrarian records are mined with their projections."""

    def test_contrarians_covered(self):
        dataset = load_dataset("housing")
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=int(dataset.metadata["phi"]),
            n_projections=20,
            method="brute_force",
        )
        result = detector.detect(dataset.values, feature_names=dataset.feature_names)
        recall = recall_of_planted(
            result.outlier_indices, dataset.planted_outliers
        )
        assert recall == 1.0

    def test_contrarian_pattern_mined_by_ga(self):
        # The paper reads off patterns like "high crime rate but low
        # distance to employment centers"; the GA should mine the
        # corresponding 2-d projection for the planted record.
        dataset = load_dataset("housing")
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=int(dataset.metadata["phi"]),
            n_projections=20,
            config=EvolutionaryConfig(
                population_size=60, max_generations=60, restarts=3
            ),
            random_state=1,
        )
        result = detector.detect(dataset.values, feature_names=dataset.feature_names)
        recall = recall_of_planted(
            result.outlier_indices, dataset.planted_outliers
        )
        assert recall >= 2 / 3


class TestMissingValuesEndToEnd:
    """§1.2: projections can be mined from incompletely observed data."""

    def test_planted_outlier_survives_missingness(self, rng):
        n = 400
        latent = rng.normal(size=n)
        data = rng.normal(size=(n, 8))
        data[:, 0] = latent + rng.normal(scale=0.1, size=n)
        data[:, 1] = latent + rng.normal(scale=0.1, size=n)
        data[42, 0] = np.quantile(data[:, 0], 0.05)
        data[42, 1] = np.quantile(data[:, 1], 0.95)
        # Punch 10% holes everywhere except the planted coordinates.
        holes = inject_missing_values(data, 0.10, random_state=5)
        holes[42, 0] = data[42, 0]
        holes[42, 1] = data[42, 1]
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, n_projections=10, method="brute_force"
        )
        result = detector.detect(holes)
        assert 42 in result.outlier_indices


class TestDeterminismEndToEnd:
    def test_same_seed_same_result(self):
        dataset = load_dataset("machine")
        def run():
            detector = SubspaceOutlierDetector(
                dimensionality=2,
                n_ranges=3,
                n_projections=10,
                config=EvolutionaryConfig(population_size=20, max_generations=20),
                random_state=77,
            )
            return detector.detect(dataset.values)

        a, b = run(), run()
        np.testing.assert_array_equal(a.outlier_indices, b.outlier_indices)
        assert [p.subspace for p in a.projections] == [
            p.subspace for p in b.projections
        ]
