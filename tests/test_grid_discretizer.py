"""Tests for the equi-depth / equi-width grid discretizers."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DiscretizationError, NotFittedError, ValidationError
from repro.grid.cells import MISSING_CELL
from repro.grid.discretizer import EquiDepthDiscretizer, EquiWidthDiscretizer


class TestEquiDepthBasics:
    def test_fit_transform_shape_and_dtype(self, small_data):
        cells = EquiDepthDiscretizer(5).fit_transform(small_data)
        assert cells.codes.shape == small_data.shape
        assert cells.codes.dtype == np.int16
        assert cells.n_ranges == 5

    def test_codes_in_range(self, small_data):
        cells = EquiDepthDiscretizer(7).fit_transform(small_data)
        assert cells.codes.min() >= 0
        assert cells.codes.max() <= 6

    def test_equi_depth_balance_continuous(self, rng):
        # With continuous data every range holds N/φ records up to
        # quantile rounding.
        data = rng.normal(size=(1000, 3))
        cells = EquiDepthDiscretizer(10).fit_transform(data)
        for dim in range(3):
            counts = cells.range_counts(dim)
            assert counts.sum() == 1000
            assert counts.min() >= 90
            assert counts.max() <= 110

    def test_monotone_assignment(self, rng):
        # Larger values never get a smaller range code.
        data = rng.normal(size=(500, 1))
        cells = EquiDepthDiscretizer(8).fit_transform(data)
        order = np.argsort(data[:, 0])
        codes_sorted = cells.codes[order, 0]
        assert (np.diff(codes_sorted) >= 0).all()

    def test_boundaries_exposed(self, small_data):
        disc = EquiDepthDiscretizer(4).fit(small_data)
        assert len(disc.boundaries) == small_data.shape[1]
        for cuts in disc.boundaries:
            assert cuts.shape == (3,)
            assert (np.diff(cuts) >= 0).all()

    def test_is_fitted_flag(self, small_data):
        disc = EquiDepthDiscretizer(4)
        assert not disc.is_fitted
        disc.fit(small_data)
        assert disc.is_fitted


class TestMissingValues:
    def test_nan_maps_to_missing_cell(self):
        data = np.array([[1.0], [np.nan], [3.0], [2.0]])
        cells = EquiDepthDiscretizer(2).fit_transform(data)
        assert cells.codes[1, 0] == MISSING_CELL
        assert (cells.codes[[0, 2, 3], 0] >= 0).all()

    def test_boundaries_ignore_nan(self):
        with_nan = np.array([[1.0], [np.nan], [2.0], [3.0], [4.0]])
        without = np.array([[1.0], [2.0], [3.0], [4.0]])
        cuts_a = EquiDepthDiscretizer(2).fit(with_nan).boundaries[0]
        cuts_b = EquiDepthDiscretizer(2).fit(without).boundaries[0]
        np.testing.assert_allclose(cuts_a, cuts_b)

    def test_all_nan_column_allowed(self):
        data = np.column_stack([np.full(5, np.nan), np.arange(5.0)])
        cells = EquiDepthDiscretizer(3).fit_transform(data)
        assert (cells.codes[:, 0] == MISSING_CELL).all()
        assert (cells.codes[:, 1] >= 0).all()

    def test_missing_fraction(self):
        data = np.array([[1.0, np.nan], [2.0, 3.0]])
        cells = EquiDepthDiscretizer(2).fit_transform(data)
        assert cells.missing_fraction == pytest.approx(0.25)


class TestEdgeCases:
    def test_constant_column_single_bin(self):
        data = np.column_stack([np.ones(50), np.arange(50.0)])
        cells = EquiDepthDiscretizer(5).fit_transform(data)
        assert (cells.codes[:, 0] == 0).all()

    def test_single_row(self):
        cells = EquiDepthDiscretizer(3).fit_transform([[1.0, 2.0]])
        assert cells.codes.shape == (1, 2)

    def test_heavy_ties_keep_codes_valid(self):
        data = np.array([[0.0]] * 90 + [[1.0]] * 10)
        cells = EquiDepthDiscretizer(10).fit_transform(data)
        assert cells.codes.min() >= 0
        assert cells.codes.max() < 10

    def test_transform_clamps_out_of_range(self, small_data):
        disc = EquiDepthDiscretizer(4).fit(small_data)
        extreme = np.full((2, small_data.shape[1]), 1e6)
        extreme[1] = -1e6
        cells = disc.transform(extreme)
        assert (cells.codes[0] == 3).all()
        assert (cells.codes[1] == 0).all()

    def test_transform_before_fit_raises(self, small_data):
        with pytest.raises(NotFittedError):
            EquiDepthDiscretizer(4).transform(small_data)

    def test_boundaries_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            EquiDepthDiscretizer(4).boundaries

    def test_column_count_mismatch(self, small_data):
        disc = EquiDepthDiscretizer(4).fit(small_data)
        with pytest.raises(DiscretizationError, match="columns"):
            disc.transform(small_data[:, :3])

    def test_feature_names_length_checked(self, small_data):
        with pytest.raises(DiscretizationError, match="feature_names"):
            EquiDepthDiscretizer(4).fit(small_data, feature_names=["a"])

    def test_feature_names_propagate(self, small_data):
        names = [f"f{i}" for i in range(small_data.shape[1])]
        cells = EquiDepthDiscretizer(4).fit_transform(small_data, feature_names=names)
        assert cells.feature_names == tuple(names)

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            EquiDepthDiscretizer(4).fit([[np.inf], [0.0]])

    def test_invalid_n_ranges(self):
        with pytest.raises(ValidationError):
            EquiDepthDiscretizer(0)


class TestEquiWidth:
    def test_equal_width_cuts(self):
        data = np.arange(0.0, 10.0).reshape(-1, 1)
        cuts = EquiWidthDiscretizer(3).fit(data).boundaries[0]
        np.testing.assert_allclose(cuts, [3.0, 6.0])

    def test_skew_concentrates_mass(self, rng):
        # Log-normal data: equi-width packs most records into low bins,
        # unlike equi-depth.  This is the paper's argument for
        # equi-depth ranges.
        data = np.exp(rng.normal(size=(1000, 1)) * 1.5)
        width_counts = EquiWidthDiscretizer(10).fit_transform(data).range_counts(0)
        depth_counts = EquiDepthDiscretizer(10).fit_transform(data).range_counts(0)
        assert width_counts.max() > 2 * depth_counts.max()

    def test_constant_column(self):
        data = np.ones((10, 1))
        cells = EquiWidthDiscretizer(4).fit_transform(data)
        assert (cells.codes == 0).all()


@settings(max_examples=50, deadline=None)
@given(
    n_ranges=st.integers(2, 12),
    values=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=200
    ),
)
def test_property_codes_bounded_and_monotone(n_ranges, values):
    """For any data: codes in [0, φ) and order-compatible with values."""
    data = np.asarray(values).reshape(-1, 1)
    cells = EquiDepthDiscretizer(n_ranges).fit_transform(data)
    codes = cells.codes[:, 0]
    assert codes.min() >= 0
    assert codes.max() < n_ranges
    order = np.argsort(data[:, 0], kind="stable")
    assert (np.diff(codes[order]) >= 0).all()
