"""Cross-module property tests: invariants the whole pipeline must keep."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    EquiDepthDiscretizer,
    EvolutionaryConfig,
    EvolutionarySearch,
    BruteForceSearch,
    CubeCounter,
    SubspaceOutlierDetector,
)


class TestMonotoneInvariance:
    """Equi-depth grids are rank-based: strictly increasing transforms
    of any attribute must not change cell codes — and therefore must
    not change detection results at all.  (This is what makes the
    method unit-free, unlike every distance baseline.)"""

    @pytest.mark.parametrize(
        "transform",
        [np.exp, np.cbrt, lambda x: 3.0 * x - 7.0, lambda x: x**3],
        ids=["exp", "cbrt", "affine", "cube"],
    )
    def test_codes_invariant(self, rng, transform):
        data = rng.normal(size=(150, 4))
        base = EquiDepthDiscretizer(5).fit_transform(data)
        warped = EquiDepthDiscretizer(5).fit_transform(transform(data))
        np.testing.assert_array_equal(base.codes, warped.codes)

    def test_detection_invariant(self, rng):
        data = rng.normal(size=(200, 5))
        data[11, 0] = np.quantile(data[:, 0], 0.02)

        def run(values):
            detector = SubspaceOutlierDetector(
                dimensionality=2, n_ranges=4, n_projections=8,
                method="brute_force",
            )
            return detector.detect(values)

        a = run(data)
        b = run(np.exp(data))  # strictly increasing, wildly nonlinear
        assert [p.subspace for p in a.projections] == [
            p.subspace for p in b.projections
        ]
        np.testing.assert_array_equal(a.outlier_indices, b.outlier_indices)


class TestRowPermutationEquivariance:
    """Shuffling rows permutes outlier indices but not the projections."""

    def test_projections_stable_points_permuted(self, rng):
        data = rng.normal(size=(120, 4))
        perm = rng.permutation(120)

        def run(values):
            return SubspaceOutlierDetector(
                dimensionality=2, n_ranges=4, n_projections=6,
                method="brute_force",
            ).detect(values)

        a = run(data)
        b = run(data[perm])
        assert {(p.subspace.dims, p.subspace.ranges) for p in a.projections} == {
            (p.subspace.dims, p.subspace.ranges) for p in b.projections
        }
        mapped = sorted(int(np.where(perm == i)[0][0]) for i in a.outlier_indices)
        assert mapped == b.outlier_indices.tolist()


class TestColumnPermutationEquivariance:
    """Reordering attributes relabels dims in mined projections."""

    def test_dims_follow_columns(self, rng):
        data = rng.normal(size=(150, 4))
        latent = rng.normal(size=150)
        data[:, 1] = latent + rng.normal(scale=0.1, size=150)
        data[:, 3] = latent + rng.normal(scale=0.1, size=150)
        order = [3, 2, 1, 0]

        def run(values):
            return SubspaceOutlierDetector(
                dimensionality=2, n_ranges=4, n_projections=5,
                method="brute_force",
            ).detect(values)

        a = run(data)
        b = run(data[:, order])
        # Coefficient multisets must agree exactly (the scores are
        # column-order-free)...
        assert [round(p.coefficient, 9) for p in a.projections] == [
            round(p.coefficient, 9) for p in b.projections
        ]
        # ...and every projection strictly better than the last slot
        # (i.e. not subject to tie-breaking at the cutoff) must remap
        # one-to-one through the column permutation.
        remap = {old: new for new, old in enumerate(order)}
        cutoff = a.projections[-1].coefficient

        def canonical(projection, mapping=None):
            dims = projection.subspace.dims
            ranges = projection.subspace.ranges
            if mapping is not None:
                pairs = sorted((mapping[d], r) for d, r in zip(dims, ranges, strict=True))
                dims = tuple(d for d, _ in pairs)
                ranges = tuple(r for _, r in pairs)
            return dims, ranges

        remapped = {
            canonical(p, remap)
            for p in a.projections
            if p.coefficient < cutoff - 1e-12
        }
        direct = {
            canonical(p)
            for p in b.projections
            if p.coefficient < cutoff - 1e-12
        }
        assert remapped == direct
        assert remapped  # the strict subset is non-trivial here


class TestCoverageConsistency:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_outliers_are_exactly_covered_points(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(80, 3))
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=5, method="brute_force"
        )
        result = detector.detect(data)
        union = set()
        for projection in result.projections:
            union.update(
                detector.counter_.covered_points(projection.subspace).tolist()
            )
        assert set(result.outlier_indices.tolist()) == union
        # Every coverage entry is truthful.
        for point, ids in result.coverage.items():
            for pid in ids:
                cube = result.projections[pid].subspace
                assert cube.covers(detector.cells_.codes)[point]


class TestSearcherBounds:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_ga_never_below_exhaustive_optimum(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(100, 4))
        counter = CubeCounter(EquiDepthDiscretizer(3).fit_transform(data))
        brute = BruteForceSearch(counter, 2, n_projections=1).run()
        ga = EvolutionarySearch(
            counter,
            2,
            1,
            config=EvolutionaryConfig(population_size=16, max_generations=10),
            random_state=seed,
        ).run()
        assert ga.best_coefficient >= brute.best_coefficient - 1e-12

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_all_mined_counts_verifiable(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(size=(90, 4))
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=6, method="brute_force"
        )
        result = detector.detect(data)
        for projection in result.projections:
            assert detector.counter_.count(projection.subspace) == projection.count
