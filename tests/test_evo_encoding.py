"""Tests for the GA solution encoding."""

import pytest
from hypothesis import given, strategies as st

from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.search.evolutionary.encoding import (
    Solution,
    WILDCARD_GENE,
    random_solution,
    seed_population,
)


class TestSolution:
    def test_basic_properties(self):
        s = Solution([WILDCARD_GENE, 2, WILDCARD_GENE, 8])
        assert s.n_dims == 4
        assert s.dimensionality == 2
        assert s.fixed_positions == (1, 3)
        assert s.wildcard_positions == (0, 2)

    def test_paper_string_rendering(self):
        # The paper's example: *3*9 in 4-dimensional data with phi=10.
        s = Solution([WILDCARD_GENE, 2, WILDCARD_GENE, 8])
        assert s.to_string() == "*3*9"

    def test_string_roundtrip(self):
        s = Solution.from_string("*3*9")
        assert s.genes == (WILDCARD_GENE, 2, WILDCARD_GENE, 8)
        assert Solution.from_string(s.to_string()) == s

    def test_delimited_string_for_large_phi(self):
        s = Solution([WILDCARD_GENE, 11])
        assert s.to_string() == "*,12"
        assert Solution.from_string("*,12") == s

    def test_from_string_checks_length(self):
        with pytest.raises(ValidationError):
            Solution.from_string("*3", n_dims=4)

    def test_feasibility(self):
        s = Solution([0, WILDCARD_GENE, 1])
        assert s.is_feasible(2)
        assert not s.is_feasible(3)

    def test_to_subspace(self):
        s = Solution([WILDCARD_GENE, 4, 0])
        assert s.to_subspace() == Subspace((1, 2), (4, 0))

    def test_from_subspace_roundtrip(self):
        cube = Subspace((0, 3), (2, 7))
        s = Solution.from_subspace(cube, 5)
        assert s.to_subspace() == cube
        assert s.dimensionality == 2

    def test_from_subspace_checks_dims(self):
        with pytest.raises(ValidationError):
            Solution.from_subspace(Subspace((5,), (0,)), 3)

    def test_replace(self):
        s = Solution([0, WILDCARD_GENE])
        t = s.replace(1, 3)
        assert t.genes == (0, 3)
        assert s.genes == (0, WILDCARD_GENE)  # immutable original

    def test_replace_bad_position(self):
        with pytest.raises(ValidationError):
            Solution([0]).replace(5, 1)

    def test_immutable(self):
        s = Solution([0])
        with pytest.raises(AttributeError):
            s.genes = (1,)

    def test_hash_and_eq(self):
        assert Solution([0, WILDCARD_GENE]) == Solution([0, WILDCARD_GENE])
        assert hash(Solution([0, 1])) == hash(Solution([0, 1]))
        assert Solution([0, 1]) != Solution([1, 0])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            Solution([])

    def test_rejects_below_wildcard(self):
        with pytest.raises(ValidationError):
            Solution([-2])


class TestRandomSolution:
    def test_feasible_by_construction(self):
        for seed in range(20):
            s = random_solution(10, 3, 5, random_state=seed)
            assert s.is_feasible(3)
            assert s.n_dims == 10
            assert all(0 <= g < 5 for g in s.genes if g != WILDCARD_GENE)

    def test_deterministic_with_seed(self):
        assert random_solution(8, 2, 4, 7) == random_solution(8, 2, 4, 7)

    def test_k_equals_d(self):
        s = random_solution(4, 4, 3, 0)
        assert s.dimensionality == 4
        assert not s.wildcard_positions

    def test_k_exceeds_d_rejected(self):
        with pytest.raises(ValidationError):
            random_solution(3, 4, 5)

    @given(
        n_dims=st.integers(1, 30),
        seed=st.integers(0, 1000),
        data=st.data(),
    )
    def test_property_always_feasible(self, n_dims, seed, data):
        k = data.draw(st.integers(1, n_dims))
        phi = data.draw(st.integers(1, 12))
        s = random_solution(n_dims, k, phi, seed)
        assert s.dimensionality == k


class TestSeedPopulation:
    def test_size_and_feasibility(self):
        population = seed_population(12, 3, 5, 20, random_state=0)
        assert len(population) == 20
        assert all(s.is_feasible(3) for s in population)

    def test_deterministic(self):
        a = seed_population(12, 3, 5, 10, random_state=3)
        b = seed_population(12, 3, 5, 10, random_state=3)
        assert a == b
