"""Tests for preprocessing utilities."""

import numpy as np
import pytest

from repro.data.preprocess import (
    drop_low_variance_columns,
    inject_missing_values,
    mean_impute,
    standardize,
)
from repro.exceptions import DatasetError


class TestStandardize:
    def test_zero_mean_unit_variance(self, rng):
        data = rng.normal(loc=5.0, scale=3.0, size=(500, 4))
        out = standardize(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_zeroed(self):
        data = np.column_stack([np.ones(10), np.arange(10.0)])
        out = standardize(data)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_nan_preserved(self):
        data = np.array([[1.0, np.nan], [3.0, 2.0], [5.0, 4.0]])
        out = standardize(data)
        assert np.isnan(out[0, 1])
        assert np.isfinite(out[:, 0]).all()

    def test_does_not_mutate_input(self):
        data = np.array([[1.0, 2.0], [3.0, 4.0]])
        original = data.copy()
        standardize(data)
        np.testing.assert_array_equal(data, original)


class TestInjectMissing:
    def test_fraction_respected(self, rng):
        data = rng.normal(size=(50, 20))
        out = inject_missing_values(data, 0.25, random_state=0)
        assert np.isnan(out).mean() == pytest.approx(0.25, abs=0.01)

    def test_zero_fraction_identity(self, rng):
        data = rng.normal(size=(10, 4))
        out = inject_missing_values(data, 0.0, random_state=0)
        np.testing.assert_array_equal(out, data)

    def test_deterministic(self, rng):
        data = rng.normal(size=(20, 5))
        a = inject_missing_values(data, 0.3, random_state=7)
        b = inject_missing_values(data, 0.3, random_state=7)
        np.testing.assert_array_equal(np.isnan(a), np.isnan(b))

    def test_input_not_mutated(self, rng):
        data = rng.normal(size=(10, 4))
        inject_missing_values(data, 0.5, random_state=0)
        assert not np.isnan(data).any()


class TestDropLowVariance:
    def test_drops_binary_column(self, rng):
        # The paper's housing cleanup: remove the single binary attribute.
        data = np.column_stack(
            [rng.normal(size=100), (rng.random(100) < 0.5).astype(float)]
        )
        reduced, kept = drop_low_variance_columns(data, min_unique=3)
        assert kept == [0]
        assert reduced.shape == (100, 1)

    def test_keeps_rich_columns(self, rng):
        data = rng.normal(size=(50, 3))
        reduced, kept = drop_low_variance_columns(data)
        assert kept == [0, 1, 2]

    def test_all_dropped_rejected(self):
        data = np.ones((10, 2))
        with pytest.raises(DatasetError):
            drop_low_variance_columns(data)


class TestMeanImpute:
    def test_fills_with_column_mean(self):
        data = np.array([[1.0, np.nan], [3.0, 4.0], [np.nan, 8.0]])
        out = mean_impute(data)
        assert out[2, 0] == pytest.approx(2.0)
        assert out[0, 1] == pytest.approx(6.0)
        assert not np.isnan(out).any()

    def test_all_nan_column_zeroed(self):
        data = np.column_stack([np.full(4, np.nan), np.arange(4.0)])
        out = mean_impute(data)
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_complete_data_unchanged(self, rng):
        data = rng.normal(size=(10, 3))
        np.testing.assert_array_equal(mean_impute(data), data)
