"""Tests for the Dataset container and CSV loading."""

import numpy as np
import pytest

from repro.data.loaders import Dataset, load_csv
from repro.exceptions import DatasetError


def make_dataset(**overrides):
    defaults = dict(
        name="toy",
        values=np.arange(12.0).reshape(4, 3),
        feature_names=("a", "b", "c"),
    )
    defaults.update(overrides)
    return Dataset(**defaults)


class TestDataset:
    def test_basic_properties(self):
        dataset = make_dataset()
        assert dataset.n_points == 4
        assert dataset.n_dims == 3

    def test_name_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset(feature_names=("a",))

    def test_labels_shape_checked(self):
        with pytest.raises(DatasetError):
            make_dataset(labels=np.array([1, 2]))

    def test_planted_out_of_range_rejected(self):
        with pytest.raises(DatasetError):
            make_dataset(planted_outliers=np.array([99]))

    def test_planted_sorted(self):
        dataset = make_dataset(planted_outliers=np.array([3, 0]))
        np.testing.assert_array_equal(dataset.planted_outliers, [0, 3])

    def test_label_fractions(self):
        dataset = make_dataset(labels=np.array([1, 1, 1, 2]))
        fractions = dataset.label_fractions()
        assert fractions[1] == pytest.approx(0.75)
        assert fractions[2] == pytest.approx(0.25)

    def test_rare_labels(self):
        labels = np.array([1] * 97 + [2, 2, 3])
        dataset = Dataset(
            name="x",
            values=np.zeros((100, 1)),
            feature_names=("f",),
            labels=labels,
        )
        assert dataset.rare_labels(0.05) == {2, 3}

    def test_rare_labels_requires_labels(self):
        with pytest.raises(DatasetError):
            make_dataset().rare_labels()

    def test_summary(self):
        text = make_dataset(labels=np.array([0, 0, 1, 1])).summary()
        assert "N=4" in text
        assert "2 classes" in text


class TestLoadCsv:
    def test_inline_text(self):
        dataset = load_csv("a,b\n1,2\n3,4\n", name="inline_test")
        assert dataset.name == "inline_test"
        np.testing.assert_allclose(dataset.values, [[1, 2], [3, 4]])
        assert dataset.feature_names == ("a", "b")

    def test_missing_tokens_become_nan(self):
        dataset = load_csv("a,b\n1,?\nNA,4\n")
        assert np.isnan(dataset.values[0, 1])
        assert np.isnan(dataset.values[1, 0])

    def test_non_numeric_becomes_nan(self):
        dataset = load_csv("a,b\nfoo,2\n1,bar\n")
        assert np.isnan(dataset.values[0, 0])
        assert np.isnan(dataset.values[1, 1])

    def test_label_column_by_name(self):
        dataset = load_csv("x,y,cls\n1,2,7\n3,4,9\n", label_column="cls")
        assert dataset.feature_names == ("x", "y")
        np.testing.assert_array_equal(dataset.labels, [7, 9])

    def test_label_column_by_index(self):
        dataset = load_csv("cls,x\nA,1\nB,2\nA,3\n", label_column=0)
        np.testing.assert_array_equal(dataset.labels, [0, 1, 0])

    def test_label_column_missing(self):
        with pytest.raises(DatasetError, match="label column"):
            load_csv("a,b\n1,2\n", label_column="nope")

    def test_file_loading(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text("p,q\n1,2\n3,4\n")
        dataset = load_csv(path)
        assert dataset.name == "data"
        assert dataset.n_points == 2

    def test_missing_file(self):
        with pytest.raises(DatasetError, match="not found"):
            load_csv("/nonexistent/file.csv")

    def test_header_only_rejected(self):
        with pytest.raises(DatasetError):
            load_csv("a,b\n")

    def test_custom_delimiter(self):
        dataset = load_csv("a;b\n1;2\n", delimiter=";")
        assert dataset.n_dims == 2


class TestCategoricalMode:
    CSV = "color,x\nred,1\nblue,2\nred,3\ngreen,4\n"

    def test_default_nan(self):
        dataset = load_csv(self.CSV)
        assert np.isnan(dataset.values[:, 0]).all()

    def test_ordinal_factorizes(self):
        dataset = load_csv(self.CSV, categorical_mode="ordinal")
        np.testing.assert_array_equal(dataset.values[:, 0], [0, 1, 0, 2])

    def test_ordinal_keeps_numeric_columns(self):
        dataset = load_csv(self.CSV, categorical_mode="ordinal")
        np.testing.assert_array_equal(dataset.values[:, 1], [1, 2, 3, 4])

    def test_ordinal_respects_missing_tokens(self):
        dataset = load_csv(
            "color,x\nred,1\n?,2\nblue,3\n", categorical_mode="ordinal"
        )
        assert np.isnan(dataset.values[1, 0])
        np.testing.assert_array_equal(dataset.values[[0, 2], 0], [0, 1])

    def test_stray_tokens_in_numeric_column_stay_nan(self):
        # A mostly-numeric column with one bad token is NOT factorized.
        dataset = load_csv(
            "x,y\n1,1\n2,2\noops,3\n4,4\n", categorical_mode="ordinal"
        )
        assert np.isnan(dataset.values[2, 0])
        np.testing.assert_array_equal(dataset.values[[0, 1, 3], 0], [1, 2, 4])

    def test_invalid_mode(self):
        with pytest.raises(DatasetError):
            load_csv(self.CSV, categorical_mode="onehot")
