"""Memory-budget regression tests for the out-of-core counting path.

The tentpole claim of the sharded counter is a *resource* claim:
counting memory is one shard plus the batch accumulator, independent of
N.  These tests enforce it with ``resource.setrlimit`` in a child
process — the sharded pipeline (streamed discretizer codes →
``build_from_chunks`` → :class:`ShardedCounter`) must complete a
dataset whose in-memory twin **cannot even materialize its code matrix**
under the same address-space cap.

The cap is set relative to the child's post-import ``VmSize`` so the
python/numpy baseline (which varies by build) never skews the budget:
only the headroom the pipeline itself is allowed to allocate is fixed.

The fast variants run in tier 1; the ``slow``-marked one scales the same
scenario to 10^7 rows (ISSUE acceptance scale).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parents[1] / "src"

#: Child protocol: argv = [mode, n, d, phi, shard_rows, headroom_mb, dir].
#: Sets RLIMIT_AS to (current VmSize + headroom), then runs the pipeline.
#: Exit 0 = completed (sharded mode also self-checks a count partition);
#: exit 42 = MemoryError (the expected in-memory failure); anything else
#: is a real bug.
CHILD = r"""
import resource, sys
import numpy as np

mode, n, d, phi, shard_rows, headroom_mb, directory = sys.argv[1:8]
n, d, phi, shard_rows = int(n), int(d), int(phi), int(shard_rows)

from repro.core.subspace import Subspace
from repro.grid.cells import CellAssignment
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.sharded import ShardedCounter, ShardedMaskStore


def code_chunks():
    # Deterministic codes, generated one shard-sized chunk at a time —
    # the only way any stage sees the data in sharded mode.
    rng = np.random.default_rng(2024)
    for lo in range(0, n, shard_rows):
        m = min(shard_rows, n - lo)
        yield rng.integers(0, phi, size=(m, d), dtype=np.int16)


def vmsize_bytes():
    with open("/proc/self/status") as status:
        for line in status:
            if line.startswith("VmSize"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("no VmSize in /proc/self/status")


limit = vmsize_bytes() + int(headroom_mb) * 1024 * 1024
resource.setrlimit(resource.RLIMIT_AS, (limit, limit))

try:
    if mode == "sharded":
        store = ShardedMaskStore.build_from_chunks(
            code_chunks(), directory, n_ranges=phi, shard_rows=shard_rows
        )
        counter = ShardedCounter(store, cache_size=0)
        cubes = [Subspace((0,), (r,)) for r in range(phi)]
        cubes += [Subspace((0, d - 1), (r, 0)) for r in range(phi)]
        counts = counter.count_batch(cubes)
        counter.close()
        # The phi single-range cubes on one dimension partition the
        # (fully observed) rows: their counts must resum to N exactly.
        if int(counts[:phi].sum()) != n:
            print("PARTITION MISMATCH", counts[:phi].sum(), n)
            sys.exit(3)
        print("OK", counts.tolist())
    elif mode == "inmemory":
        codes = np.concatenate(list(code_chunks()), axis=0)
        counter = PackedCubeCounter(
            CellAssignment(codes=codes, n_ranges=phi), cache_size=0
        )
        counter.count_batch([Subspace((0,), (r,)) for r in range(phi)])
        counter.close()
        print("OK")
    else:
        sys.exit(2)
except MemoryError:
    sys.exit(42)
"""


def run_child(mode, tmp_path, *, n, d=8, phi=5, shard_rows=1 << 17, headroom_mb):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(SRC)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [
            sys.executable, "-c", CHILD,
            mode, str(n), str(d), str(phi), str(shard_rows),
            str(headroom_mb), str(tmp_path / "store"),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )


class TestMemoryBudget:
    def test_sharded_completes_under_small_cap(self, tmp_path):
        # 10^6 rows: the in-memory code matrix alone is 16 MB and the
        # packed stack another 25 MB, but the sharded pipeline only ever
        # holds one 2 MB chunk of codes and one 640 KB shard stack — it
        # must fit (and self-check its counts) in 32 MB of headroom.
        result = run_child(
            "sharded", tmp_path, n=1_000_000, headroom_mb=32
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("OK")

    def test_in_memory_fails_under_same_scale_cap(self, tmp_path):
        # The same generator at 4x the rows: materializing the full code
        # matrix (64 MB) must blow a 48 MB cap with a MemoryError —
        # this is the failure mode the sharded path exists to remove.
        result = run_child(
            "inmemory", tmp_path, n=4_000_000, headroom_mb=48
        )
        assert result.returncode == 42, (result.returncode, result.stderr)

    def test_sharded_cap_is_real(self, tmp_path):
        # Sanity for the harness itself: the sharded pipeline is not
        # exempt from the rlimit — a headroom below one chunk of codes
        # must fail, proving the cap actually binds in child processes.
        result = run_child(
            "sharded", tmp_path, n=1_000_000, headroom_mb=1
        )
        assert result.returncode == 42, (result.returncode, result.stderr)


@pytest.mark.slow
class TestMemoryBudgetAtScale:
    def test_ten_million_rows_out_of_core(self, tmp_path):
        # ISSUE acceptance scale: 10^7 rows (160 MB of codes, 50 MB
        # packed) counted under a cap that the in-memory twin cannot
        # even load its data within.
        sharded = run_child(
            "sharded", tmp_path / "a", n=10_000_000, headroom_mb=96
        )
        assert sharded.returncode == 0, sharded.stderr
        assert sharded.stdout.startswith("OK")
        inmemory = run_child(
            "inmemory", tmp_path / "b", n=10_000_000, headroom_mb=96
        )
        assert inmemory.returncode == 42, (inmemory.returncode, inmemory.stderr)
