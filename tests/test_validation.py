"""Tests for repro._validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    check_dimension_subset,
    check_in_range,
    check_matrix,
    check_positive_int,
    check_probability,
    check_rng,
)
from repro.exceptions import ValidationError


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_returns_python_int(self):
        assert type(check_positive_int(np.int32(2), "x")) is int

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValidationError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ValidationError):
            check_positive_int(-1, "x", minimum=0)

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="must be an integer"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive_int("3", "x")

    def test_error_names_parameter(self):
        with pytest.raises(ValidationError, match="n_ranges"):
            check_positive_int(-5, "n_ranges")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0, 0, 1])
    def test_accepts_valid(self, value):
        assert check_probability(value, "p") == float(value)

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ValidationError):
            check_probability(value, "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_probability("half", "p")


class TestCheckInRange:
    def test_bounds_inclusive(self):
        assert check_in_range(1.0, "x", low=1.0, high=2.0) == 1.0
        assert check_in_range(2.0, "x", low=1.0, high=2.0) == 2.0

    def test_rejects_below_low(self):
        with pytest.raises(ValidationError):
            check_in_range(0.5, "x", low=1.0)

    def test_rejects_above_high(self):
        with pytest.raises(ValidationError):
            check_in_range(3.0, "x", high=2.0)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_in_range(float("nan"), "x")


class TestCheckMatrix:
    def test_coerces_lists(self):
        out = check_matrix([[1, 2], [3, 4]])
        assert out.dtype == np.float64
        assert out.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-dimensional"):
            check_matrix([1, 2, 3])

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            check_matrix(np.zeros((2, 2, 2)))

    def test_nan_allowed_by_default(self):
        out = check_matrix([[1.0, float("nan")]])
        assert np.isnan(out[0, 1])

    def test_nan_rejected_when_disallowed(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_matrix([[1.0, float("nan")]], allow_nan=False)

    def test_inf_always_rejected(self):
        with pytest.raises(ValidationError, match="infinit"):
            check_matrix([[1.0, float("inf")]])

    def test_inf_message_names_offending_columns(self):
        data = [
            [1.0, float("inf"), 2.0, float("-inf")],
            [3.0, 4.0, 5.0, 6.0],
        ]
        with pytest.raises(ValidationError, match=r"column\(s\) 1, 3"):
            check_matrix(data)

    def test_negative_inf_rejected_with_column(self):
        with pytest.raises(ValidationError, match=r"column\(s\) 0"):
            check_matrix([[float("-inf"), 1.0]])

    def test_inf_rejected_at_detect_entry(self):
        import numpy as np

        from repro import SubspaceOutlierDetector

        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=2, method="random", random_state=0
        )
        data = np.ones((20, 3))
        data[7, 2] = np.inf
        with pytest.raises(ValidationError, match=r"column\(s\) 2"):
            detector.detect(data)

    def test_min_rows(self):
        with pytest.raises(ValidationError, match="at least 2 row"):
            check_matrix([[1.0, 2.0]], min_rows=2)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_matrix([["a", "b"]])


class TestCheckRng:
    def test_none_gives_generator(self):
        assert isinstance(check_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        a = check_rng(42).random()
        b = check_rng(42).random()
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_rng(gen) is gen

    def test_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        assert isinstance(check_rng(seq), np.random.Generator)

    def test_rejects_other_types(self):
        with pytest.raises(ValidationError):
            check_rng("seed")


class TestCheckDimensionSubset:
    def test_accepts_valid(self):
        assert check_dimension_subset([2, 0, 1], 3) == (2, 0, 1)

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate"):
            check_dimension_subset([0, 0], 3)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_dimension_subset([3], 3)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_dimension_subset([-1], 3)
