"""Tests for the Figure 2 brute-force enumeration."""

import itertools

import numpy as np
import pytest

from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.search.brute_force import BruteForceSearch, search_space_size
from repro.sparsity.coefficient import sparsity_coefficient


def exhaustive_reference(counter, k, require_nonempty=True):
    """All k-dimensional cubes scored by direct enumeration."""
    results = []
    for dims in itertools.combinations(range(counter.n_dims), k):
        for ranges in itertools.product(range(counter.n_ranges), repeat=k):
            cube = Subspace(dims, ranges)
            count = counter.count(cube)
            if require_nonempty and count == 0:
                continue
            coeff = sparsity_coefficient(
                count, counter.n_points, counter.n_ranges, k
            )
            results.append((coeff, cube, count))
    results.sort(key=lambda item: item[0])
    return results


class TestSearchSpaceSize:
    def test_paper_example(self):
        # d=20, k=4, phi=10 -> ~7 * 10^7 possibilities.
        assert search_space_size(20, 4, 10) == 4845 * 10_000

    def test_simple(self):
        assert search_space_size(3, 2, 2) == 3 * 4

    def test_k_exceeds_d(self):
        with pytest.raises(ValidationError):
            search_space_size(3, 4, 2)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_matches_exhaustive_reference(self, small_counter, k):
        outcome = BruteForceSearch(small_counter, k, n_projections=10).run()
        reference = exhaustive_reference(small_counter, k)[:10]
        got = [(p.coefficient, p.count) for p in outcome.projections]
        want = [(c, n) for c, _, n in reference]
        assert got == pytest.approx(want)

    def test_each_cube_generated_once(self, small_counter):
        # Evaluations = number of scored cubes at the last level; with
        # canonical ordering this is exactly C(d,k) * phi^k.
        outcome = BruteForceSearch(
            small_counter, 2, n_projections=5, require_nonempty=False
        ).run()
        assert outcome.stats["evaluations"] == search_space_size(
            small_counter.n_dims, 2, small_counter.n_ranges
        )

    def test_projection_dimensionality(self, small_counter):
        outcome = BruteForceSearch(small_counter, 3, n_projections=5).run()
        assert all(p.dimensionality == 3 for p in outcome.projections)

    def test_nonempty_filter(self, small_counter):
        outcome = BruteForceSearch(small_counter, 3, n_projections=20).run()
        assert all(p.count >= 1 for p in outcome.projections)

    def test_threshold_mode(self, small_counter):
        outcome = BruteForceSearch(
            small_counter, 2, n_projections=None, threshold=-1.0
        ).run()
        assert all(p.coefficient <= -1.0 for p in outcome.projections)
        reference = [
            c for c, _, _ in exhaustive_reference(small_counter, 2) if c <= -1.0
        ]
        assert len(outcome.projections) == len(reference)

    def test_with_missing_values(self, rng):
        data = rng.normal(size=(100, 4))
        data[rng.random(data.shape) < 0.2] = np.nan
        from repro.grid.discretizer import EquiDepthDiscretizer

        cells = EquiDepthDiscretizer(3).fit_transform(data)
        counter = CubeCounter(cells)
        outcome = BruteForceSearch(counter, 2, n_projections=5).run()
        reference = exhaustive_reference(counter, 2)[:5]
        got = [p.coefficient for p in outcome.projections]
        assert got == pytest.approx([c for c, _, _ in reference])


class TestBudgets:
    def test_max_evaluations_partial(self, small_counter):
        outcome = BruteForceSearch(
            small_counter, 3, n_projections=5, max_evaluations=10
        ).run()
        assert not outcome.completed
        assert outcome.stats["evaluations"] <= 10 + small_counter.n_ranges

    def test_zero_second_budget_incomplete(self, small_counter):
        outcome = BruteForceSearch(
            small_counter, 3, n_projections=5, max_seconds=0.0
        ).run()
        # May score a few cubes before the first clock check, but must
        # flag the run as not completed.
        assert not outcome.completed


class TestValidation:
    def test_k_exceeds_dims(self, small_counter):
        with pytest.raises(ValidationError):
            BruteForceSearch(small_counter, small_counter.n_dims + 1)

    def test_rejects_non_counter(self):
        with pytest.raises(ValidationError):
            BruteForceSearch("counter", 2)

    def test_rejects_phi_one(self):
        cells = CellAssignment(np.zeros((5, 3), dtype=np.int16), 1)
        with pytest.raises(ValidationError, match="φ >= 2"):
            BruteForceSearch(CubeCounter(cells), 2)


class TestOutcome:
    def test_stats_populated(self, small_counter):
        outcome = BruteForceSearch(small_counter, 2, n_projections=5).run()
        assert outcome.completed
        assert outcome.stats["algorithm"] == "brute_force"
        assert outcome.stats["elapsed_seconds"] >= 0
        assert outcome.stats["search_space_size"] == search_space_size(
            small_counter.n_dims, 2, small_counter.n_ranges
        )

    def test_best_and_mean_coefficient(self, small_counter):
        outcome = BruteForceSearch(small_counter, 2, n_projections=5).run()
        assert outcome.best_coefficient == outcome.projections[0].coefficient
        assert outcome.mean_coefficient(top=1) == outcome.best_coefficient

    def test_empty_outcome_nan(self):
        from repro.search.outcome import SearchOutcome

        empty = SearchOutcome(projections=())
        assert empty.best_coefficient != empty.best_coefficient
        assert empty.mean_coefficient() != empty.mean_coefficient()
