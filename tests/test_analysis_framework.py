"""Framework tests: pragmas, baseline, reporters, runner and CLI.

These lock the parts of ``repro.analysis`` that other tooling depends
on — the pragma grammar, the line-number-free baseline matching, the
JSON report schema (``REPORT_VERSION``) and the CLI exit-code
contract (0 clean / 1 violations / 2 usage error).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, PragmaIndex, Violation, lint_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.report import REPORT_VERSION, render_json, render_text
from repro.analysis.runner import select_rules
from repro.exceptions import ValidationError

UNSEEDED = "import numpy as np\nrng = np.random.default_rng()\n"


def _violation(**overrides):
    payload = {
        "path": "repro/sample.py",
        "line": 3,
        "column": 4,
        "code": "RPL001",
        "message": "unseeded rng",
        "qualname": "Sampler.draw",
    }
    payload.update(overrides)
    return Violation(**payload)


class TestPragmas:
    def test_line_pragma_suppresses_named_code_on_that_line(self):
        index = PragmaIndex.from_source(
            "x = 1\ny = clock()  # repro-lint: disable=RPL002\n"
        )
        assert index.suppresses(_violation(code="RPL002", line=2))
        assert not index.suppresses(_violation(code="RPL002", line=1))
        assert not index.suppresses(_violation(code="RPL001", line=2))

    def test_bare_disable_suppresses_every_code(self):
        index = PragmaIndex.from_source("y = f()  # repro-lint: disable\n")
        assert index.suppresses(_violation(code="RPL007", line=1))

    def test_file_pragma_suppresses_everywhere(self):
        index = PragmaIndex.from_source(
            "# repro-lint: disable-file=RPL001\nx = 1\ny = 2\n"
        )
        assert index.suppresses(_violation(code="RPL001", line=3))
        assert not index.suppresses(_violation(code="RPL002", line=3))

    def test_comma_separated_codes(self):
        index = PragmaIndex.from_source(
            "z = g()  # repro-lint: disable=RPL001, RPL003\n"
        )
        assert index.suppresses(_violation(code="RPL001", line=1))
        assert index.suppresses(_violation(code="RPL003", line=1))
        assert not index.suppresses(_violation(code="RPL002", line=1))

    def test_pragma_end_to_end(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RPL001\n"
        )
        result = lint_paths([tmp_path])
        assert result.violations == []
        assert result.suppressed == 1


class TestBaseline:
    def test_round_trip_preserves_entries_and_justifications(self, tmp_path):
        baseline = Baseline()
        violation = _violation()
        baseline.add(violation, "measured deadline enforcement")
        path = tmp_path / "baseline.json"
        baseline.save(path)

        loaded = Baseline.load(path)
        assert loaded.contains(violation)
        assert (
            loaded.justification_for(violation)
            == "measured deadline enforcement"
        )

    def test_matching_ignores_line_and_column(self, tmp_path):
        baseline = Baseline()
        baseline.add(_violation(line=3, column=4), "justified")
        moved = _violation(line=99, column=0)
        assert baseline.contains(moved)

    def test_empty_justification_is_rejected(self):
        with pytest.raises(ValidationError, match="justification"):
            Baseline().add(_violation(), "   ")

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValidationError, match="version"):
            Baseline.load(path)

    def test_corrupt_file_is_a_usage_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            Baseline.load(path)

    def test_baseline_absorbs_known_violations_in_runner(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        raw = lint_paths([tmp_path])
        assert len(raw.violations) == 1

        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        gated = lint_paths([tmp_path], baseline=baseline)
        assert gated.violations == []
        assert len(gated.baselined) == 1
        assert gated.exit_code == 0


class TestRunner:
    def test_unknown_rule_code_raises(self):
        with pytest.raises(ValidationError, match="unknown rule code"):
            select_rules(select=["RPL999"])

    def test_ignore_removes_codes(self):
        rules = select_rules(ignore=["RPL001", "RPL002"])
        assert sorted(r.code for r in rules) == [
            "RPL003", "RPL004", "RPL005", "RPL006", "RPL007", "RPL008",
            "RPL009", "RPL010", "RPL011", "RPL012", "RPL013", "RPL014",
        ]

    def test_parse_failure_becomes_rpl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([tmp_path])
        assert [v.code for v in result.violations] == ["RPL000"]
        assert result.exit_code == 1

    def test_pycache_and_hidden_dirs_are_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "cached.py").write_text(UNSEEDED)
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "secret.py").write_text(UNSEEDED)
        (tmp_path / "visible.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 1
        assert result.violations == []


class TestReporters:
    def _result(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        return lint_paths([tmp_path])

    def test_json_schema_is_locked(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["version"] == REPORT_VERSION
        assert sorted(payload) == [
            "baselined", "stale_baseline", "summary", "version",
            "violations",
        ]
        assert sorted(payload["summary"]) == [
            "baselined", "cache_hits", "exit_code", "files_checked",
            "files_parsed", "stale_baseline", "suppressed", "violations",
        ]
        (record,) = payload["violations"]
        assert sorted(record) == [
            "code", "column", "line", "message", "path", "qualname",
        ]
        assert record["code"] == "RPL001"

    def test_text_report_contains_location_and_summary(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "repro/mod.py:2:" in text
        assert "RPL001" in text
        assert "1 violation(s)" in text

    def test_verbose_text_lists_baselined(self, tmp_path):
        raw = self._result(tmp_path)
        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        gated = lint_paths([tmp_path / "repro"], baseline=baseline)
        text = render_text(gated, verbose=True)
        assert "baselined (1 grandfathered):" in text


class TestCli:
    def _write_dirty_tree(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        return target

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0

    def test_exit_one_on_violations(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "RPL001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "--select", "RPL999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_baseline_flag_gates_known_violations(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert (
            lint_main(
                [
                    str(tmp_path),
                    "--update-baseline",
                    "--baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
        assert baseline_path.exists()
        assert (
            lint_main([str(tmp_path), "--baseline", str(baseline_path)]) == 0
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline"]) == 1
        )

    def test_json_format_emits_schema(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == REPORT_VERSION
        assert payload["summary"]["violations"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        assert (
            lint_main(
                [str(tmp_path), "--no-baseline", "--select", "RPL003"]
            )
            == 0
        )

    def test_repo_gate_is_green(self, capsys, monkeypatch, tmp_path):
        """The acceptance invariant: ``repro-lint src/`` exits 0."""
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        monkeypatch.chdir(repo_root)
        assert lint_main(["src"]) == 0


class TestDeterministicOrdering:
    def test_violations_sorted_by_path_line_code(self, tmp_path):
        """Output order is a stable (path, line, column, code, ...) sort,
        independent of file-discovery order."""
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "zeta.py").write_text(UNSEEDED)
        (pkg / "alpha.py").write_text(
            "import numpy as np\n"
            "a = np.random.default_rng()\n"
            "b = np.random.default_rng()\n"
        )
        result = lint_paths([tmp_path])
        rendered = [v.render() for v in result.violations]
        assert rendered == sorted(rendered)
        keys = [(v.path, v.line, v.column, v.code) for v in result.violations]
        assert keys == sorted(keys)
        assert keys[0][0] == "repro/alpha.py"
        assert keys[-1][0] == "repro/zeta.py"

    def test_order_stable_across_runs(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "one.py").write_text(UNSEEDED)
        (pkg / "two.py").write_text(UNSEEDED)
        first = lint_paths([tmp_path])
        second = lint_paths([tmp_path])
        assert [v.render() for v in first.violations] == [
            v.render() for v in second.violations
        ]


class TestSarifReport:
    def _result(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        return lint_paths([tmp_path])

    def test_sarif_schema_is_locked(self, tmp_path):
        from repro.analysis.report import SARIF_VERSION, render_sarif

        payload = json.loads(render_sarif(self._result(tmp_path)))
        assert sorted(payload) == ["$schema", "runs", "version"]
        assert payload["version"] == SARIF_VERSION == "2.1.0"
        assert "sarif-schema-2.1.0.json" in payload["$schema"]
        (run,) = payload["runs"]
        assert sorted(run) == ["results", "tool"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        (rule,) = driver["rules"]
        assert sorted(rule) == ["id", "name", "shortDescription"]
        assert rule["id"] == "RPL001"
        (record,) = run["results"]
        assert sorted(record) == ["level", "locations", "message", "ruleId"]
        assert record["ruleId"] == "RPL001"
        assert record["level"] == "error"
        (location,) = record["locations"]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"] == "repro/mod.py"
        # SARIF regions are 1-based in both axes.
        assert physical["region"]["startLine"] >= 1
        assert physical["region"]["startColumn"] >= 1

    def test_baselined_findings_carry_suppression(self, tmp_path):
        from repro.analysis.report import render_sarif

        raw = self._result(tmp_path)
        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        gated = lint_paths([tmp_path], baseline=baseline)
        payload = json.loads(render_sarif(gated))
        (record,) = payload["runs"][0]["results"]
        assert record["suppressions"] == [
            {"kind": "external", "justification": "baselined"}
        ]

    def test_cli_emits_sarif(self, tmp_path, capsys):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        assert (
            lint_main([str(tmp_path), "--no-baseline", "--format", "sarif"])
            == 1
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"


class TestBaselineStaleness:
    def _dirty_tree(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        return target

    def test_stale_entries_reported_in_result(self, tmp_path):
        target = self._dirty_tree(tmp_path)
        raw = lint_paths([tmp_path])
        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        target.write_text("x = 1\n")  # fix the violation
        result = lint_paths([tmp_path], baseline=baseline)
        assert result.violations == []
        assert len(result.stale_baseline) == 1
        code, path, _qualname, _message = result.stale_baseline[0]
        assert (code, path) == ("RPL001", "repro/mod.py")

    def test_live_baseline_is_not_stale(self, tmp_path):
        self._dirty_tree(tmp_path)
        raw = lint_paths([tmp_path])
        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        result = lint_paths([tmp_path], baseline=baseline)
        assert result.stale_baseline == []

    def test_check_baseline_fails_on_staleness(self, tmp_path, capsys):
        target = self._dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert (
            lint_main(
                [str(tmp_path), "--update-baseline", "--baseline",
                 str(baseline_path)]
            )
            == 0
        )
        target.write_text("x = 1\n")
        assert (
            lint_main(
                [str(tmp_path), "--check-baseline", "--baseline",
                 str(baseline_path)]
            )
            == 1
        )
        err = capsys.readouterr().err
        assert "stale baseline" in err
        assert "RPL001" in err

    def test_check_baseline_passes_when_live(self, tmp_path, capsys):
        self._dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        lint_main(
            [str(tmp_path), "--update-baseline", "--baseline",
             str(baseline_path)]
        )
        assert (
            lint_main(
                [str(tmp_path), "--check-baseline", "--baseline",
                 str(baseline_path)]
            )
            == 0
        )

    def test_update_baseline_prunes_and_reports(self, tmp_path, capsys):
        target = self._dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        lint_main(
            [str(tmp_path), "--update-baseline", "--baseline",
             str(baseline_path)]
        )
        target.write_text("x = 1\n")
        assert (
            lint_main(
                [str(tmp_path), "--update-baseline", "--baseline",
                 str(baseline_path)]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "pruned 1 stale entr(y/ies)" in err
        refreshed = Baseline.load(baseline_path)
        assert len(refreshed) == 0

    def test_update_conflicts_with_check(self, tmp_path, capsys):
        self._dirty_tree(tmp_path)
        with pytest.raises(SystemExit):
            lint_main([str(tmp_path), "--update-baseline", "--check-baseline"])


class TestExitCodeContract:
    def test_clean_but_empty_source_dir_is_exit_zero(self, tmp_path, capsys):
        """Exit 2 means *usage error*; an empty tree is simply clean."""
        empty = tmp_path / "nothing_here"
        empty.mkdir()
        assert lint_main([str(empty), "--no-baseline"]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s) in 0 file(s)" in out

    def test_cache_flag_round_trips_through_cli(self, tmp_path, capsys):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        cache = tmp_path / "cache.json"
        args = [
            str(tmp_path), "--no-baseline", "--format", "json",
            "--cache", str(cache),
        ]
        assert lint_main(args) == 1
        cold = json.loads(capsys.readouterr().out)["summary"]
        assert lint_main(args) == 1
        warm = json.loads(capsys.readouterr().out)["summary"]
        assert cold["files_parsed"] == 1 and cold["cache_hits"] == 0
        assert warm["files_parsed"] == 0 and warm["cache_hits"] == 1
