"""Framework tests: pragmas, baseline, reporters, runner and CLI.

These lock the parts of ``repro.analysis`` that other tooling depends
on — the pragma grammar, the line-number-free baseline matching, the
JSON report schema (``REPORT_VERSION``) and the CLI exit-code
contract (0 clean / 1 violations / 2 usage error).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, PragmaIndex, Violation, lint_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.report import REPORT_VERSION, render_json, render_text
from repro.analysis.runner import select_rules
from repro.exceptions import ValidationError

UNSEEDED = "import numpy as np\nrng = np.random.default_rng()\n"


def _violation(**overrides):
    payload = {
        "path": "repro/sample.py",
        "line": 3,
        "column": 4,
        "code": "RPL001",
        "message": "unseeded rng",
        "qualname": "Sampler.draw",
    }
    payload.update(overrides)
    return Violation(**payload)


class TestPragmas:
    def test_line_pragma_suppresses_named_code_on_that_line(self):
        index = PragmaIndex.from_source(
            "x = 1\ny = clock()  # repro-lint: disable=RPL002\n"
        )
        assert index.suppresses(_violation(code="RPL002", line=2))
        assert not index.suppresses(_violation(code="RPL002", line=1))
        assert not index.suppresses(_violation(code="RPL001", line=2))

    def test_bare_disable_suppresses_every_code(self):
        index = PragmaIndex.from_source("y = f()  # repro-lint: disable\n")
        assert index.suppresses(_violation(code="RPL007", line=1))

    def test_file_pragma_suppresses_everywhere(self):
        index = PragmaIndex.from_source(
            "# repro-lint: disable-file=RPL001\nx = 1\ny = 2\n"
        )
        assert index.suppresses(_violation(code="RPL001", line=3))
        assert not index.suppresses(_violation(code="RPL002", line=3))

    def test_comma_separated_codes(self):
        index = PragmaIndex.from_source(
            "z = g()  # repro-lint: disable=RPL001, RPL003\n"
        )
        assert index.suppresses(_violation(code="RPL001", line=1))
        assert index.suppresses(_violation(code="RPL003", line=1))
        assert not index.suppresses(_violation(code="RPL002", line=1))

    def test_pragma_end_to_end(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro-lint: disable=RPL001\n"
        )
        result = lint_paths([tmp_path])
        assert result.violations == []
        assert result.suppressed == 1


class TestBaseline:
    def test_round_trip_preserves_entries_and_justifications(self, tmp_path):
        baseline = Baseline()
        violation = _violation()
        baseline.add(violation, "measured deadline enforcement")
        path = tmp_path / "baseline.json"
        baseline.save(path)

        loaded = Baseline.load(path)
        assert loaded.contains(violation)
        assert (
            loaded.justification_for(violation)
            == "measured deadline enforcement"
        )

    def test_matching_ignores_line_and_column(self, tmp_path):
        baseline = Baseline()
        baseline.add(_violation(line=3, column=4), "justified")
        moved = _violation(line=99, column=0)
        assert baseline.contains(moved)

    def test_empty_justification_is_rejected(self):
        with pytest.raises(ValidationError, match="justification"):
            Baseline().add(_violation(), "   ")

    def test_unknown_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValidationError, match="version"):
            Baseline.load(path)

    def test_corrupt_file_is_a_usage_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json")
        with pytest.raises(ValidationError, match="not valid JSON"):
            Baseline.load(path)

    def test_baseline_absorbs_known_violations_in_runner(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        raw = lint_paths([tmp_path])
        assert len(raw.violations) == 1

        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        gated = lint_paths([tmp_path], baseline=baseline)
        assert gated.violations == []
        assert len(gated.baselined) == 1
        assert gated.exit_code == 0


class TestRunner:
    def test_unknown_rule_code_raises(self):
        with pytest.raises(ValidationError, match="unknown rule code"):
            select_rules(select=["RPL999"])

    def test_ignore_removes_codes(self):
        rules = select_rules(ignore=["RPL001", "RPL002"])
        assert sorted(r.code for r in rules) == [
            "RPL003", "RPL004", "RPL005", "RPL006", "RPL007", "RPL008",
            "RPL009",
        ]

    def test_parse_failure_becomes_rpl000(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([tmp_path])
        assert [v.code for v in result.violations] == ["RPL000"]
        assert result.exit_code == 1

    def test_pycache_and_hidden_dirs_are_skipped(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "cached.py").write_text(UNSEEDED)
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "secret.py").write_text(UNSEEDED)
        (tmp_path / "visible.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert result.files_checked == 1
        assert result.violations == []


class TestReporters:
    def _result(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        return lint_paths([tmp_path])

    def test_json_schema_is_locked(self, tmp_path):
        payload = json.loads(render_json(self._result(tmp_path)))
        assert payload["version"] == REPORT_VERSION
        assert sorted(payload) == [
            "baselined", "summary", "version", "violations",
        ]
        assert sorted(payload["summary"]) == [
            "baselined", "exit_code", "files_checked", "suppressed",
            "violations",
        ]
        (record,) = payload["violations"]
        assert sorted(record) == [
            "code", "column", "line", "message", "path", "qualname",
        ]
        assert record["code"] == "RPL001"

    def test_text_report_contains_location_and_summary(self, tmp_path):
        text = render_text(self._result(tmp_path))
        assert "repro/mod.py:2:" in text
        assert "RPL001" in text
        assert "1 violation(s)" in text

    def test_verbose_text_lists_baselined(self, tmp_path):
        raw = self._result(tmp_path)
        baseline = Baseline.from_violations(raw.violations, "grandfathered")
        gated = lint_paths([tmp_path / "repro"], baseline=baseline)
        text = render_text(gated, verbose=True)
        assert "baselined (1 grandfathered):" in text


class TestCli:
    def _write_dirty_tree(self, tmp_path):
        target = tmp_path / "repro" / "mod.py"
        target.parent.mkdir()
        target.write_text(UNSEEDED)
        return target

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0

    def test_exit_one_on_violations(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline"]) == 1
        assert "RPL001" in capsys.readouterr().out

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean), "--select", "RPL999"]) == 2
        assert "unknown rule code" in capsys.readouterr().err

    def test_baseline_flag_gates_known_violations(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        baseline_path = tmp_path / "baseline.json"
        assert (
            lint_main(
                [
                    str(tmp_path),
                    "--update-baseline",
                    "--baseline",
                    str(baseline_path),
                ]
            )
            == 0
        )
        assert baseline_path.exists()
        assert (
            lint_main([str(tmp_path), "--baseline", str(baseline_path)]) == 0
        )
        assert (
            lint_main([str(tmp_path), "--no-baseline"]) == 1
        )

    def test_json_format_emits_schema(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        assert lint_main([str(tmp_path), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == REPORT_VERSION
        assert payload["summary"]["violations"] == 1

    def test_select_limits_rules(self, tmp_path, capsys):
        self._write_dirty_tree(tmp_path)
        assert (
            lint_main(
                [str(tmp_path), "--no-baseline", "--select", "RPL003"]
            )
            == 0
        )

    def test_repo_gate_is_green(self, capsys, monkeypatch, tmp_path):
        """The acceptance invariant: ``repro-lint src/`` exits 0."""
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[1]
        monkeypatch.chdir(repo_root)
        assert lint_main(["src"]) == 0
