"""Tests for ScoredProjection and DetectionResult."""

import numpy as np
import pytest

from repro.core.results import DetectionResult, ScoredProjection
from repro.core.subspace import Subspace
from repro.exceptions import ValidationError


def projection(coefficient, count=1, dim=0, rng_=0):
    return ScoredProjection(Subspace((dim,), (rng_,)), count, coefficient)


class TestScoredProjection:
    def test_properties(self):
        p = projection(-2.5, count=3)
        assert p.dimensionality == 1
        assert not p.is_empty
        assert p.significance == pytest.approx(0.99379, abs=1e-3)

    def test_empty_flag(self):
        assert projection(-4.0, count=0).is_empty

    def test_positive_coefficient_zero_significance(self):
        assert projection(1.0).significance == 0.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            projection(-1.0, count=-1)

    def test_describe(self):
        text = projection(-2.0, count=4).describe(["age"])
        assert "age" in text
        assert "n=4" in text
        assert "S=-2.000" in text


def make_result(**overrides):
    projections = (
        projection(-3.0, count=1, dim=0, rng_=0),
        projection(-2.0, count=2, dim=1, rng_=1),
    )
    defaults = dict(
        projections=projections,
        outlier_indices=np.array([5, 2]),
        n_points=10,
        n_dims=4,
        n_ranges=5,
        dimensionality=1,
        coverage={2: (0,), 5: (0, 1)},
        stats={"elapsed_seconds": 0.1},
    )
    defaults.update(overrides)
    return DetectionResult(**defaults)


class TestDetectionResult:
    def test_indices_sorted(self):
        result = make_result()
        np.testing.assert_array_equal(result.outlier_indices, [2, 5])

    def test_n_outliers(self):
        assert make_result().n_outliers == 2

    def test_best_coefficient(self):
        assert make_result().best_coefficient == -3.0

    def test_mean_coefficient(self):
        assert make_result().mean_coefficient() == pytest.approx(-2.5)
        assert make_result().mean_coefficient(top=1) == pytest.approx(-3.0)

    def test_mean_of_empty_is_nan(self):
        result = make_result(projections=(), outlier_indices=np.array([]), coverage={})
        assert result.mean_coefficient() != result.mean_coefficient()
        assert result.best_coefficient != result.best_coefficient

    def test_outlier_mask(self):
        mask = make_result().outlier_mask()
        assert mask.sum() == 2
        assert mask[2] and mask[5]

    def test_point_score_is_min_covering(self):
        result = make_result()
        assert result.point_score(5) == -3.0
        assert result.point_score(2) == -3.0

    def test_point_score_uncovered_nan(self):
        score = make_result().point_score(9)
        assert score != score

    def test_ranked_outliers_order(self):
        result = make_result(coverage={2: (1,), 5: (0, 1)})
        ranked = result.ranked_outliers()
        assert ranked[0][0] == 5  # -3.0 beats -2.0
        assert ranked[0][1] == -3.0

    def test_ranked_ties_break_by_coverage_then_index(self):
        result = make_result(coverage={2: (0,), 5: (0, 1)})
        ranked = result.ranked_outliers()
        # Both have score -3.0, point 5 covered by more projections.
        assert [p for p, _ in ranked] == [5, 2]

    def test_projections_covering(self):
        result = make_result()
        covering = result.projections_covering(5)
        assert len(covering) == 2

    def test_iteration(self):
        assert len(list(make_result())) == 2

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(ValidationError):
            make_result(outlier_indices=np.array([99]))

    def test_2d_indices_rejected(self):
        with pytest.raises(ValidationError):
            make_result(outlier_indices=np.array([[1]]))
