"""Tests for the SubspaceOutlierDetector facade."""

import numpy as np
import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.exceptions import ValidationError
from repro.grid.discretizer import EquiWidthDiscretizer
from repro.search.evolutionary.config import EvolutionaryConfig


def quick_config():
    return EvolutionaryConfig(population_size=24, max_generations=30)


@pytest.fixture
def planted(rng):
    """Correlated pair + noise dims with one planted rare combination."""
    n = 400
    latent = rng.normal(size=n)
    data = rng.normal(size=(n, 8))
    data[:, 0] = latent + rng.normal(scale=0.1, size=n)
    data[:, 1] = latent + rng.normal(scale=0.1, size=n)
    # Planted: low on dim 0, high on dim 1.
    data[42, 0] = np.quantile(data[:, 0], 0.05)
    data[42, 1] = np.quantile(data[:, 1], 0.95)
    return data


class TestDetectPipeline:
    def test_finds_planted_rare_combination(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=5,
            n_projections=10,
            config=quick_config(),
            random_state=0,
        )
        result = detector.detect(planted)
        assert 42 in result.outlier_indices
        # And the covering projection pins the right dimensions.
        covering = result.projections_covering(42)
        assert any(p.subspace.dims == (0, 1) for p in covering)

    def test_brute_force_method(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, n_projections=10, method="brute_force"
        )
        result = detector.detect(planted)
        assert 42 in result.outlier_indices

    def test_attributes_populated(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, config=quick_config(), random_state=0
        )
        result = detector.detect(planted)
        assert detector.cells_ is not None
        assert detector.counter_ is not None
        assert detector.outcome_ is not None
        assert detector.result_ is result

    def test_coverage_consistent_with_counter(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, config=quick_config(), random_state=0
        )
        result = detector.detect(planted)
        for point, proj_ids in result.coverage.items():
            for pid in proj_ids:
                cube = result.projections[pid].subspace
                assert cube.covers(detector.cells_.codes)[point]

    def test_outliers_equal_union_of_covered(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, config=quick_config(), random_state=0
        )
        result = detector.detect(planted)
        union = set()
        for p in result.projections:
            union.update(
                detector.counter_.covered_points(p.subspace).tolist()
            )
        assert set(result.outlier_indices.tolist()) == union

    def test_feature_names_flow_to_cells(self, planted):
        names = [f"f{i}" for i in range(planted.shape[1])]
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=5, config=quick_config(), random_state=0
        )
        detector.detect(planted, feature_names=names)
        assert detector.cells_.feature_names == tuple(names)

    def test_custom_discretizer(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=5,
            method="brute_force",
            discretizer=EquiWidthDiscretizer(5),
        )
        result = detector.detect(planted)
        assert result.n_ranges == 5

    def test_threshold_mode(self, planted):
        detector = SubspaceOutlierDetector(
            dimensionality=2,
            n_ranges=5,
            n_projections=None,
            threshold=-2.5,
            method="brute_force",
        )
        result = detector.detect(planted)
        assert all(p.coefficient <= -2.5 for p in result.projections)

    def test_missing_values_supported(self, planted, rng):
        data = planted.copy()
        data[rng.random(data.shape) < 0.1] = np.nan
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, config=quick_config(), random_state=0
        )
        result = detector.detect(data)
        assert result.n_points == data.shape[0]


class TestDimensionalityResolution:
    def test_equation_two_applied_by_default(self):
        detector = SubspaceOutlierDetector(n_ranges=10)
        assert detector.resolve_dimensionality(10_000, 50) == 3

    def test_capped_at_data_dims(self):
        detector = SubspaceOutlierDetector(n_ranges=2)
        assert detector.resolve_dimensionality(10**6, 3) == 3

    def test_explicit_k_wins(self):
        detector = SubspaceOutlierDetector(dimensionality=2, n_ranges=10)
        assert detector.resolve_dimensionality(10_000, 50) == 2

    def test_explicit_k_exceeding_dims_rejected(self):
        detector = SubspaceOutlierDetector(dimensionality=9)
        with pytest.raises(ValidationError):
            detector.resolve_dimensionality(100, 4)


class TestValidation:
    def test_unknown_method(self):
        with pytest.raises(ValidationError):
            SubspaceOutlierDetector(method="magic")

    def test_unbounded_without_threshold(self):
        with pytest.raises(ValidationError):
            SubspaceOutlierDetector(n_projections=None)

    def test_phi_minimum(self):
        with pytest.raises(ValidationError):
            SubspaceOutlierDetector(n_ranges=1)

    def test_rejects_1d_data(self):
        detector = SubspaceOutlierDetector(dimensionality=1, config=quick_config())
        with pytest.raises(ValidationError):
            detector.detect(np.arange(10.0))
