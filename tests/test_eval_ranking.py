"""Tests for the ranking metrics (AUC, precision@n)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eval.ranking import (
    outlyingness_from_subspace_scores,
    precision_at,
    roc_auc,
)
from repro.exceptions import ValidationError


class TestRocAuc:
    def test_perfect_ranking(self):
        scores = np.array([0.1, 0.2, 0.9, 0.95])
        labels = np.array([False, False, True, True])
        assert roc_auc(scores, labels) == 1.0

    def test_inverted_ranking(self):
        scores = np.array([0.9, 0.95, 0.1, 0.2])
        labels = np.array([False, False, True, True])
        assert roc_auc(scores, labels) == 0.0

    def test_random_scores_near_half(self, rng):
        scores = rng.random(4000)
        labels = rng.random(4000) < 0.1
        assert abs(roc_auc(scores, labels) - 0.5) < 0.05

    def test_all_tied_is_half(self):
        scores = np.ones(10)
        labels = np.array([True] * 3 + [False] * 7)
        assert roc_auc(scores, labels) == pytest.approx(0.5)

    def test_partial_ties_midrank(self):
        # outlier tied with one inlier above another inlier:
        # P(out > in) = (1 + 0.5) / 2.
        scores = np.array([1.0, 1.0, 0.0])
        labels = np.array([True, False, False])
        assert roc_auc(scores, labels) == pytest.approx(0.75)

    def test_matches_pair_counting(self, rng):
        scores = rng.normal(size=60)
        labels = rng.random(60) < 0.3
        if labels.sum() in (0, 60):
            labels[0] = True
            labels[1] = False
        pairs = wins = 0.0
        for i in np.nonzero(labels)[0]:
            for j in np.nonzero(~labels)[0]:
                pairs += 1
                if scores[i] > scores[j]:
                    wins += 1
                elif scores[i] == scores[j]:
                    wins += 0.5
        assert roc_auc(scores, labels) == pytest.approx(wins / pairs)

    def test_needs_both_classes(self):
        with pytest.raises(ValidationError):
            roc_auc(np.ones(3), np.array([True, True, True]))

    def test_rejects_nan_scores(self):
        with pytest.raises(ValidationError):
            roc_auc(np.array([np.nan, 1.0]), np.array([True, False]))


class TestPrecisionAt:
    def test_basic(self):
        scores = np.array([5.0, 4.0, 3.0, 2.0])
        labels = np.array([True, False, True, False])
        assert precision_at(scores, labels, 1) == 1.0
        assert precision_at(scores, labels, 2) == 0.5

    def test_n_too_large(self):
        with pytest.raises(ValidationError):
            precision_at(np.ones(2), np.array([True, False]), 5)

    def test_tie_break_by_index(self):
        scores = np.array([1.0, 1.0])
        labels = np.array([True, False])
        assert precision_at(scores, labels, 1) == 1.0


class TestSubspaceConversion:
    def test_nan_floors_below_covered(self):
        scores = np.array([-4.0, np.nan, -2.0])
        out = outlyingness_from_subspace_scores(scores)
        assert out[0] > out[2] > out[1]

    def test_all_nan(self):
        out = outlyingness_from_subspace_scores(np.array([np.nan, np.nan]))
        assert (out == out[0]).all()

    def test_end_to_end_auc_beats_baselines(self, rng):
        # The headline claim as a ranking metric: subspace AUC beats
        # kNN AUC on a planted-subspace workload with noise dims.
        from repro import SubspaceOutlierDetector
        from repro.baselines import KNNDistanceOutlierDetector

        n = 400
        latent = rng.normal(size=n)
        data = rng.normal(size=(n, 30))
        data[:, 0] = latent + rng.normal(scale=0.1, size=n)
        data[:, 1] = latent + rng.normal(scale=0.1, size=n)
        planted = [11, 77, 123]
        for i, row in enumerate(planted):
            lo, hi = (0.03 + 0.01 * i, 0.97 - 0.01 * i)
            data[row, 0] = np.quantile(data[:, 0], lo)
            data[row, 1] = np.quantile(data[:, 1], hi)
        labels = np.zeros(n, dtype=bool)
        labels[planted] = True

        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=5, n_projections=20,
            method="brute_force",
        )
        detector.detect(data)
        subspace_auc = roc_auc(
            outlyingness_from_subspace_scores(detector.score(data)), labels
        )
        knn_auc = roc_auc(
            KNNDistanceOutlierDetector(n_neighbors=1).scores(data), labels
        )
        assert subspace_auc > 0.9
        assert subspace_auc > knn_auc


@settings(max_examples=40)
@given(
    scores=st.lists(st.floats(-100, 100, allow_nan=False), min_size=4, max_size=40),
    data=st.data(),
)
def test_property_auc_in_unit_interval(scores, data):
    labels = data.draw(
        st.lists(st.booleans(), min_size=len(scores), max_size=len(scores))
    )
    labels = np.asarray(labels)
    if labels.all() or not labels.any():
        labels[0] = True
        labels[-1] = False
        if len(labels) < 2 or labels.all() or not labels.any():
            return
    value = roc_auc(np.asarray(scores), labels)
    assert 0.0 <= value <= 1.0