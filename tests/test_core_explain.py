"""Tests for outlier explanations and report rendering."""

import numpy as np
import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.core.explain import explain_point, render_report
from repro.exceptions import ValidationError


@pytest.fixture
def detection(rng):
    n = 300
    latent = rng.normal(size=n)
    data = rng.normal(size=(n, 6))
    data[:, 0] = latent + rng.normal(scale=0.1, size=n)
    data[:, 1] = latent + rng.normal(scale=0.1, size=n)
    data[7, 0] = np.quantile(data[:, 0], 0.05)
    data[7, 1] = np.quantile(data[:, 1], 0.95)
    names = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]
    detector = SubspaceOutlierDetector(
        dimensionality=2,
        n_ranges=5,
        n_projections=10,
        method="brute_force",
    )
    result = detector.detect(data, feature_names=names)
    return detector, result, data, names


class TestExplainPoint:
    def test_flagged_point_has_findings(self, detection):
        detector, result, data, names = detection
        explanation = explain_point(7, result, detector.cells_, data, names)
        assert explanation.point_index == 7
        assert explanation.findings
        assert explanation.score <= 0

    def test_findings_name_features_and_values(self, detection):
        detector, result, data, names = detection
        explanation = explain_point(7, result, detector.cells_, data, names)
        text = "\n".join(explanation.findings)
        assert "alpha" in text or "beta" in text
        assert "value" in text
        assert "sparsity" in text

    def test_uncovered_point_empty(self, detection):
        detector, result, data, names = detection
        uncovered = next(
            i for i in range(result.n_points) if i not in result.coverage
        )
        explanation = explain_point(uncovered, result, detector.cells_)
        assert not explanation.findings
        assert "not covered" in str(explanation)

    def test_findings_sorted_most_negative_first(self, detection):
        detector, result, data, names = detection
        covered_by_many = max(
            result.coverage, key=lambda p: len(result.coverage[p])
        )
        explanation = explain_point(covered_by_many, result, detector.cells_)
        coefficients = [p.coefficient for p in explanation.projections]
        assert coefficients == sorted(coefficients)

    def test_without_raw_data_no_values(self, detection):
        detector, result, _data, _names = detection
        explanation = explain_point(7, result, detector.cells_)
        assert all("value" not in line for line in explanation.findings)

    def test_out_of_range_point(self, detection):
        detector, result, data, names = detection
        with pytest.raises(ValidationError):
            explain_point(10_000, result, detector.cells_)

    def test_missing_value_rendered(self, detection, rng):
        detector, result, data, names = detection
        data = data.copy()
        flagged = int(result.outlier_indices[0])
        dims = result.projections_covering(flagged)[0].subspace.dims
        data[flagged, dims[0]] = np.nan
        explanation = explain_point(flagged, result, detector.cells_, data)
        assert "missing" in "\n".join(explanation.findings)


class TestRenderReport:
    def test_report_structure(self, detection):
        detector, result, data, names = detection
        report = render_report(result, detector.cells_, data, top=5)
        assert "Subspace outlier detection report" in report
        assert "Most abnormal projections:" in report
        assert "Top 5 outliers:" in report
        assert f"N={result.n_points}" in report

    def test_report_uses_feature_names(self, detection):
        detector, result, data, names = detection
        report = render_report(
            result, detector.cells_, data, top=3, feature_names=names
        )
        assert any(name in report for name in names)
