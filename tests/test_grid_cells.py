"""Tests for CellAssignment."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.grid.cells import CellAssignment, MISSING_CELL


def make_cells(codes, phi=4, **kwargs):
    return CellAssignment(np.asarray(codes, dtype=np.int16), phi, **kwargs)


class TestValidation:
    def test_basic_properties(self):
        cells = make_cells([[0, 1], [2, 3]])
        assert cells.n_points == 2
        assert cells.n_dims == 2
        assert cells.n_ranges == 4

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            CellAssignment(np.zeros(3, dtype=np.int16), 4)

    def test_rejects_float_codes(self):
        with pytest.raises(ValidationError, match="integer"):
            CellAssignment(np.zeros((2, 2)), 4)

    def test_rejects_code_out_of_range(self):
        with pytest.raises(ValidationError):
            make_cells([[0, 4]])

    def test_rejects_below_missing(self):
        with pytest.raises(ValidationError):
            make_cells([[-2, 0]])

    def test_missing_cell_accepted(self):
        cells = make_cells([[MISSING_CELL, 0]])
        assert cells.missing_fraction == 0.5

    def test_feature_names_length(self):
        with pytest.raises(ValidationError):
            make_cells([[0, 0]], feature_names=("only_one",))


class TestQueries:
    def test_column_view(self):
        cells = make_cells([[0, 1], [2, 3]])
        np.testing.assert_array_equal(cells.column(1), [1, 3])

    def test_column_out_of_range(self):
        with pytest.raises(ValidationError):
            make_cells([[0, 0]]).column(5)

    def test_range_counts_skip_missing(self):
        cells = make_cells([[0], [0], [1], [MISSING_CELL]], phi=2)
        np.testing.assert_array_equal(cells.range_counts(0), [2, 1])

    def test_describe_range_without_boundaries(self):
        cells = make_cells([[0]], feature_names=("age",))
        assert "age" in cells.describe_range(0, 0)
        assert "range 1/4" in cells.describe_range(0, 0)

    def test_describe_range_with_boundaries(self):
        cells = CellAssignment(
            np.array([[0]], dtype=np.int16),
            3,
            feature_names=("x",),
            boundaries=(np.array([1.0, 2.0]),),
        )
        assert "(-inf, 1]" in cells.describe_range(0, 0)
        assert "(1, 2]" in cells.describe_range(0, 1)
        assert "(2, +inf]" in cells.describe_range(0, 2)

    def test_describe_range_invalid_index(self):
        with pytest.raises(ValidationError):
            make_cells([[0]]).describe_range(0, 9)

    def test_subset(self):
        cells = make_cells([[0], [1], [2]])
        sub = cells.subset([0, 2])
        assert sub.n_points == 2
        np.testing.assert_array_equal(sub.codes[:, 0], [0, 2])
        assert sub.n_ranges == cells.n_ranges
