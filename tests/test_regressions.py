"""Regression tests for real bugs surfaced by the repro-lint rules.

Each test pins a concrete fix made while bringing the tree under
``python -m repro.analysis`` (see docs/determinism.md):

* RPL007 flagged NaN probes written as ``x == x`` / ``x != x`` float
  comparisons in the eval table renderers; those now use
  ``math.isnan`` and must keep rendering budget-exhausted cells as
  ``-`` / ``None`` instead of formatting ``nan``.
* RPL003 flagged benchmark artifacts written with bare
  ``Path.write_text`` — a kill mid-write would corrupt the persisted
  tables; they now route through ``repro._atomic``.
* The lint sweep also caught ``check_dimension_subset`` missing from
  ``repro._validation.__all__``.
"""

from __future__ import annotations

import math
from pathlib import Path
from types import SimpleNamespace

from repro._validation import __all__ as validation_all
from repro.analysis import lint_paths
from repro.eval.comparison import ComparisonRow, render_table
from repro.eval.harness import ExperimentResult
from repro.eval.sweeps import render_sweep

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _cell(quality, *, completed=True, elapsed=1.0):
    return ExperimentResult(
        dataset="synthetic",
        algorithm="gen",
        elapsed_seconds=elapsed,
        quality=quality,
        completed=completed,
        result=SimpleNamespace(n_outliers=5),
    )


class TestNanFormatting:
    def test_experiment_row_nan_quality_is_none(self):
        row = _cell(float("nan")).row()
        assert row["quality"] is None

    def test_experiment_row_finite_quality_rounds(self):
        row = _cell(-2.34567).row()
        assert row["quality"] == -2.3457

    def test_render_table_nan_quality_is_dash(self):
        table = render_table(
            [
                ComparisonRow(
                    dataset="musk",
                    n_dims=160,
                    brute=None,
                    gen=_cell(float("nan")),
                    gen_opt=_cell(-1.5),
                )
            ]
        )
        assert "nan" not in table
        assert "-1.50" in table

    def test_render_sweep_nan_rows_are_dashes(self):
        rows = [
            {
                "k": 3,
                "quality": float("nan"),
                "best_coefficient": float("nan"),
                "n_outliers": 0,
                "n_projections_mined": 0,
                "elapsed_seconds": 0.5,
            }
        ]
        text = render_sweep(rows, "k")
        assert "nan" not in text
        assert text.count("-") >= 2

    def test_gen_opt_matches_brute_is_nan_safe(self):
        row = ComparisonRow(
            dataset="d",
            n_dims=10,
            brute=_cell(float("nan")),
            gen=_cell(-1.0),
            gen_opt=_cell(float("nan")),
        )
        assert row.gen_opt_matches_brute is False
        assert math.isnan(row.brute.quality)


class TestLintCaughtFixesStayFixed:
    def test_benchmarks_have_no_non_atomic_writes(self):
        """benchmarks/ persists tables; RPL003 must stay clean there."""
        result = lint_paths([_REPO_ROOT / "benchmarks"], select=["RPL003"])
        assert result.violations == []

    def test_eval_has_no_float_equality(self):
        result = lint_paths([_REPO_ROOT / "src" / "repro" / "eval"], select=["RPL007"])
        assert result.violations == []


def test_validation_all_exports_check_dimension_subset():
    assert "check_dimension_subset" in validation_all


class TestRpl011ExceptionContract:
    """RPL011 (PR 10) flagged ``RetryPolicy.__post_init__`` raising bare
    ``ValueError`` on a path reachable from the public
    ``CountingBackend.retry_policy`` API — breaking the library's
    promise that deliberate errors derive from ``ReproError``.  The
    raises are now ``ValidationError`` (which still IS-A ``ValueError``,
    so pre-existing callers keep working)."""

    def test_retry_policy_validation_is_typed(self):
        import pytest

        from repro.exceptions import ReproError, ValidationError
        from repro.resilience.retry import RetryPolicy

        with pytest.raises(ValidationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff=-1.0)
        # The typed error must remain catchable both ways.
        assert issubclass(ValidationError, ReproError)
        assert issubclass(ValidationError, ValueError)

    def test_rpl011_stays_clean_on_src(self):
        result = lint_paths([_REPO_ROOT / "src"], select=["RPL011"])
        assert result.violations == []
