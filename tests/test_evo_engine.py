"""Tests for the evolutionary search engine (Figure 3)."""

import pytest

from repro.core.params import CountingBackend
from repro.exceptions import ValidationError
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.grid.packed_counter import PackedCubeCounter
from repro.search.brute_force import BruteForceSearch
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.crossover import TwoPointCrossover
from repro.search.evolutionary.engine import EvolutionarySearch
from repro.search.evolutionary.selection import TournamentSelection


def quick_config(**overrides):
    base = dict(population_size=24, max_generations=40)
    base.update(overrides)
    return EvolutionaryConfig(**base)


class TestBasicRun:
    def test_returns_k_dimensional_projections(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter, 2, 10, config=quick_config(), random_state=0
        ).run()
        assert outcome.completed
        assert 0 < len(outcome.projections) <= 10
        assert all(p.dimensionality == 2 for p in outcome.projections)

    def test_projections_sorted(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter, 2, 10, config=quick_config(), random_state=0
        ).run()
        coefficients = [p.coefficient for p in outcome.projections]
        assert coefficients == sorted(coefficients)

    def test_deterministic_given_seed(self, small_counter):
        a = EvolutionarySearch(
            small_counter, 2, 5, config=quick_config(), random_state=11
        ).run()
        b = EvolutionarySearch(
            small_counter, 2, 5, config=quick_config(), random_state=11
        ).run()
        assert [p.subspace for p in a.projections] == [
            p.subspace for p in b.projections
        ]

    def test_stats_populated(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter, 2, 5, config=quick_config(), random_state=0
        ).run()
        assert outcome.stats["generations"] >= 0
        assert outcome.stats["evaluations"] > 0
        assert "OptimizedCrossover" in outcome.stats["algorithm"]


class TestNeverBeatsBruteForce:
    @pytest.mark.parametrize("k", [1, 2])
    def test_ga_bounded_by_exhaustive_optimum(self, small_counter, k):
        brute = BruteForceSearch(small_counter, k, n_projections=1).run()
        ga = EvolutionarySearch(
            small_counter, k, 1, config=quick_config(), random_state=0
        ).run()
        assert ga.best_coefficient >= brute.best_coefficient - 1e-12

    def test_ga_finds_optimum_on_small_problem(self, small_counter):
        # d=6, phi=5, k=2: 375 cubes; the GA should find the global best.
        brute = BruteForceSearch(small_counter, 2, n_projections=1).run()
        ga = EvolutionarySearch(
            small_counter,
            2,
            1,
            config=quick_config(population_size=40, max_generations=60),
            random_state=3,
        ).run()
        assert ga.best_coefficient == pytest.approx(brute.best_coefficient)


class TestCrossoverVariants:
    def test_two_point_by_name(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(),
            crossover="two_point",
            random_state=0,
        ).run()
        assert "TwoPointCrossover" in outcome.stats["algorithm"]

    def test_operator_instance(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(),
            crossover=TwoPointCrossover(two_cut_points=True),
            random_state=0,
        ).run()
        assert len(outcome.projections) > 0

    def test_unknown_name_rejected(self, small_counter):
        with pytest.raises(ValidationError, match="unknown crossover"):
            EvolutionarySearch(small_counter, 2, crossover="magic")

    def test_bad_type_rejected(self, small_counter):
        with pytest.raises(ValidationError):
            EvolutionarySearch(small_counter, 2, crossover=42)


class TestCrossoverRate:
    def test_partial_rate_runs(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(crossover_rate=0.5),
            random_state=0,
        ).run()
        assert outcome.projections

    def test_zero_rate_is_mutation_only(self, small_counter):
        # With crossover disabled the engine still mines (pure
        # selection + mutation), just with fewer evaluations.
        with_xo = EvolutionarySearch(
            small_counter, 2, 5, config=quick_config(), random_state=1
        ).run()
        without = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(crossover_rate=0.0),
            random_state=1,
        ).run()
        assert without.projections
        assert without.stats["evaluations"] < with_xo.stats["evaluations"]


class TestSelectionInjection:
    def test_custom_selection(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(),
            selection=TournamentSelection(size=3),
            random_state=0,
        ).run()
        assert len(outcome.projections) > 0


class TestTermination:
    def test_generation_cap(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(max_generations=3, convergence_threshold=1.0),
            random_state=0,
        ).run()
        assert outcome.stats["generations"] <= 3

    def test_stall_early_stop(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(max_generations=100, stall_generations=2),
            random_state=0,
        ).run()
        assert outcome.stats["generations"] < 100

    def test_time_budget(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=quick_config(max_seconds=1e-9, max_generations=1000),
            random_state=0,
        ).run()
        assert not outcome.completed

    def test_convergence_reached_with_aggressive_selection(self, rng):
        # A tiny problem with strong selection pressure and no mutation
        # should hit the De Jong criterion quickly.
        data = rng.normal(size=(80, 3))
        counter = CubeCounter(EquiDepthDiscretizer(3).fit_transform(data))
        outcome = EvolutionarySearch(
            counter,
            1,
            3,
            config=EvolutionaryConfig(
                population_size=30,
                max_generations=300,
                mutation_swap_probability=0.0,
                mutation_flip_probability=0.0,
            ),
            random_state=0,
        ).run()
        assert outcome.stats["converged"] == 1.0


class TestThresholdMode:
    def test_unbounded_collection(self, small_counter):
        outcome = EvolutionarySearch(
            small_counter,
            2,
            None,
            config=quick_config(),
            threshold=-1.0,
            random_state=0,
        ).run()
        assert all(p.coefficient <= -1.0 for p in outcome.projections)


class TestValidation:
    def test_k_exceeds_dims(self, small_counter):
        with pytest.raises(ValidationError):
            EvolutionarySearch(small_counter, 99)

    def test_rejects_non_counter(self):
        with pytest.raises(ValidationError):
            EvolutionarySearch("counter", 2)


class TestBackendDeterminism:
    """Same seed => identical run, whatever the counting backend.

    The GA's entire stochastic trajectory depends only on the rng stream
    and the fitness values; batched and process-pool counting return
    bit-identical counts (integers) and coefficients (the same float64
    ops), so the best set AND the per-generation trace must match
    exactly across backends and worker counts.
    """

    def _run(self, counter, seed=17):
        return EvolutionarySearch(
            counter,
            2,
            8,
            config=quick_config(track_history=True),
            random_state=seed,
        ).run()

    def _assert_identical(self, a, b):
        assert [p.subspace for p in a.projections] == [
            p.subspace for p in b.projections
        ]
        assert [p.coefficient for p in a.projections] == [
            p.coefficient for p in b.projections
        ]
        assert [p.count for p in a.projections] == [
            p.count for p in b.projections
        ]
        assert a.stats["generations"] == b.stats["generations"]
        assert a.stats["evaluations"] == b.stats["evaluations"]
        assert a.history == b.history

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_serial_vs_process(self, small_cells, n_workers):
        serial = CubeCounter(small_cells)
        parallel = CubeCounter(
            small_cells,
            backend=CountingBackend(
                kind="process", n_workers=n_workers, chunk_size=8
            ),
        )
        try:
            self._assert_identical(self._run(serial), self._run(parallel))
        finally:
            serial.close()
            parallel.close()

    def test_serial_vs_process_packed(self, small_cells):
        serial = PackedCubeCounter(small_cells)
        parallel = PackedCubeCounter(
            small_cells,
            backend=CountingBackend(kind="process", n_workers=2, chunk_size=8),
        )
        try:
            self._assert_identical(self._run(serial), self._run(parallel))
        finally:
            serial.close()
            parallel.close()

    def test_dense_vs_packed(self, small_cells):
        dense = CubeCounter(small_cells)
        packed = PackedCubeCounter(small_cells)
        try:
            self._assert_identical(self._run(dense), self._run(packed))
        finally:
            dense.close()
            packed.close()
