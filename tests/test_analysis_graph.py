"""Unit tests for ``repro.analysis.graph``: the project-wide index.

Covers the graph builder itself — import-cycle detection, re-export
resolution, ``__all__`` capture, call resolution — plus the fact
extractor's JSON round-trip and the incremental cache's hit/miss and
invalidation behaviour (edit one file → only that file re-parses,
identical findings).
"""

from __future__ import annotations

import ast
import json
import textwrap

from repro.analysis.config import LintConfig
from repro.analysis.graph import (
    CACHE_VERSION,
    FactsCache,
    FileFacts,
    ProjectGraph,
    extract_facts,
    file_digest,
)
from repro.analysis.runner import lint_paths
from repro.analysis.sources import ModuleSource


def facts_for(path: str, text: str) -> FileFacts:
    source = textwrap.dedent(text)
    module = ModuleSource(path=path, text=source, tree=ast.parse(source))
    return extract_facts(module)


def build_graph(files: dict) -> ProjectGraph:
    return ProjectGraph(
        {path: facts_for(path, text) for path, text in files.items()}
    )


class TestFactExtraction:
    def test_facts_round_trip_through_json(self):
        facts = facts_for(
            "repro/sample.py",
            """
            import numpy as np
            from .events import emit_event

            __all__ = ["runner"]

            class Runner:
                def go(self, sink, seed):
                    rng = np.random.default_rng(seed)
                    emit_event(sink, "run_started")
                    raise ValueError("boom")
            """,
        )
        payload = json.loads(json.dumps(facts.to_json()))
        assert FileFacts.from_json(payload).to_json() == facts.to_json()

    def test_exports_and_classes_are_captured(self):
        facts = facts_for(
            "repro/sample.py",
            """
            __all__ = ["Alpha", "beta"]
            class Alpha:
                class Inner: ...
            def beta(): ...
            """,
        )
        assert facts.exports == ["Alpha", "beta"]
        assert set(facts.classes) == {"Alpha", "Alpha.Inner"}

    def test_module_without_all_reports_none(self):
        assert facts_for("repro/sample.py", "x = 1\n").exports is None

    def test_relative_imports_resolve_against_module_path(self):
        facts = facts_for(
            "repro/grid/reader.py",
            """
            from .cells import CellIndex
            from ..engine.events import emit_event
            """,
        )
        assert facts.from_imports["CellIndex"] == ["repro.grid.cells", "CellIndex"]
        assert facts.from_imports["emit_event"] == [
            "repro.engine.events", "emit_event",
        ]


class TestImportGraph:
    def test_cycle_detection_finds_scc(self):
        graph = build_graph(
            {
                "repro/a.py": "from repro.b import thing\n",
                "repro/b.py": "from repro.c import other\n",
                "repro/c.py": "from repro.a import thing\n",
                "repro/leaf.py": "from repro.a import thing\n",
            }
        )
        assert graph.import_cycles() == [["repro.a", "repro.b", "repro.c"]]

    def test_acyclic_tree_has_no_cycles(self):
        graph = build_graph(
            {
                "repro/a.py": "from repro.b import thing\n",
                "repro/b.py": "x = 1\n",
            }
        )
        assert graph.import_cycles() == []

    def test_cycles_are_deterministically_ordered(self):
        files = {
            "repro/a.py": "from repro.b import t\n",
            "repro/b.py": "from repro.a import t\n",
            "repro/x.py": "from repro.y import t\n",
            "repro/y.py": "from repro.x import t\n",
        }
        first = build_graph(files).import_cycles()
        second = build_graph(dict(reversed(list(files.items())))).import_cycles()
        assert first == second == [["repro.a", "repro.b"], ["repro.x", "repro.y"]]


class TestSymbolResolution:
    def test_resolves_symbol_defined_in_module(self):
        graph = build_graph({"repro/mod.py": "def helper(): ...\n"})
        assert graph.resolve_symbol("repro.mod", "helper") == (
            "repro.mod", "helper",
        )

    def test_follows_re_export_chain(self):
        graph = build_graph(
            {
                "repro/pkg/__init__.py": "from .impl import Thing\n",
                "repro/pkg/impl.py": "class Thing: ...\n",
                "repro/user.py": "from repro.pkg import Thing\n",
            }
        )
        assert graph.resolve_symbol("repro.user", "Thing") == (
            "repro.pkg.impl", "Thing",
        )

    def test_external_symbol_resolves_to_none(self):
        graph = build_graph({"repro/mod.py": "import numpy as np\n"})
        assert graph.resolve_symbol("repro.mod", "np.memmap") is None

    def test_call_resolution_crosses_modules(self):
        graph = build_graph(
            {
                "repro/core/api.py": (
                    "from repro.internal.helper import load\n"
                    "def entry(path):\n"
                    "    return load(path)\n"
                ),
                "repro/internal/helper.py": "def load(path): ...\n",
            }
        )
        assert graph.resolve_call("repro.core.api", "entry", "load") == (
            "repro.internal.helper", "load",
        )
        origin = graph.reachable_from([("repro.core.api", "entry")])
        assert ("repro.internal.helper", "load") in origin


class TestFactsCache:
    def _cache_roundtrip(self, tmp_path, fingerprint="fp"):
        cache = FactsCache(fingerprint)
        facts = facts_for("repro/mod.py", "x = 1\n")
        cache.store("repro/mod.py", facts, [], 0)
        target = tmp_path / "cache.json"
        cache.save(target)
        return target

    def test_round_trip_hits_on_same_digest(self, tmp_path):
        target = self._cache_roundtrip(tmp_path)
        loaded = FactsCache.load(target, "fp")
        facts = facts_for("repro/mod.py", "x = 1\n")
        assert loaded.lookup("repro/mod.py", facts.digest) is not None
        assert loaded.hits == ["repro/mod.py"]

    def test_digest_change_misses(self, tmp_path):
        target = self._cache_roundtrip(tmp_path)
        loaded = FactsCache.load(target, "fp")
        assert loaded.lookup("repro/mod.py", "0" * 64) is None
        assert loaded.misses == ["repro/mod.py"]

    def test_fingerprint_mismatch_starts_cold(self, tmp_path):
        target = self._cache_roundtrip(tmp_path)
        loaded = FactsCache.load(target, "other-fingerprint")
        facts = facts_for("repro/mod.py", "x = 1\n")
        assert loaded.lookup("repro/mod.py", facts.digest) is None

    def test_corrupt_file_starts_cold(self, tmp_path):
        target = tmp_path / "cache.json"
        target.write_text("{not json")
        loaded = FactsCache.load(target, "fp")
        assert loaded.lookup("repro/mod.py", "0" * 64) is None

    def test_fingerprint_depends_on_rules_and_config(self):
        config = LintConfig()
        base = FactsCache.make_fingerprint(["RPL001"], config.digest())
        assert base == FactsCache.make_fingerprint(["RPL001"], config.digest())
        assert base != FactsCache.make_fingerprint(["RPL002"], config.digest())
        other = LintConfig(rng_allowed_modules=("repro/x.py",))
        assert base != FactsCache.make_fingerprint(["RPL001"], other.digest())

    def test_cache_version_is_part_of_the_file(self, tmp_path):
        target = self._cache_roundtrip(tmp_path)
        payload = json.loads(target.read_text())
        assert payload["cache_version"] == CACHE_VERSION


class TestIncrementalLint:
    def _tree(self, tmp_path):
        pkg = tmp_path / "repro"
        pkg.mkdir(exist_ok=True)
        (pkg / "alpha.py").write_text(
            "import numpy as np\n\n\ndef draw(seed):\n"
            "    return np.random.default_rng(seed)\n"
        )
        (pkg / "beta.py").write_text(
            "import numpy as np\n\nrng = np.random.default_rng()\n"
        )
        return pkg

    def test_warm_run_parses_nothing_and_agrees(self, tmp_path):
        self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], cache_path=cache)
        warm = lint_paths([tmp_path], cache_path=cache)
        assert cold.files_parsed == 2 and cold.cache_hits == 0
        assert warm.files_parsed == 0 and warm.cache_hits == 2
        assert warm.violations == cold.violations
        assert warm.suppressed == cold.suppressed

    def test_editing_one_file_reparses_only_it(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], cache_path=cache)
        (pkg / "alpha.py").write_text(
            "import numpy as np\n\n\ndef draw(seed):\n"
            "    gen = np.random.default_rng(seed)\n    return gen\n"
        )
        edited = lint_paths([tmp_path], cache_path=cache)
        assert edited.files_parsed == 1
        assert edited.cache_hits == 1
        assert edited.violations == cold.violations

    def test_deleted_file_is_pruned_from_cache(self, tmp_path):
        pkg = self._tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths([tmp_path], cache_path=cache)
        (pkg / "beta.py").unlink()
        lint_paths([tmp_path], cache_path=cache)
        payload = json.loads(cache.read_text())
        assert sorted(payload["entries"]) == ["repro/alpha.py"]

    def test_project_rules_see_cached_facts(self, tmp_path):
        """A violation whose halves live in two files must still fire
        when both files come out of the cache untouched."""
        pkg = tmp_path / "repro"
        pkg.mkdir()
        (pkg / "faults.py").write_text(
            'FAULT_POINTS = {"shard_read": "reads"}\n'
            "def maybe_inject(point, **detail): ...\n"
        )
        (pkg / "reader.py").write_text(
            "from repro.faults import maybe_inject\n"
            "def read(path):\n"
            '    maybe_inject("shard_raed")\n'
        )
        cache = tmp_path / "cache.json"
        cold = lint_paths([tmp_path], select=["RPL014"], cache_path=cache)
        warm = lint_paths([tmp_path], select=["RPL014"], cache_path=cache)
        assert [v.code for v in cold.violations] == ["RPL014"]
        assert warm.violations == cold.violations
        assert warm.files_parsed == 0
