"""Differential suite for the incremental model layer (``repro.model``).

The layer's defining invariant: **any** interleaving of
``GridModel.update`` / ``GridModel.merge`` / ``GridModel.rebin``
followed by a final ``rebin()`` yields grid cuts, cell codes and cube
counts bit-identical to a one-shot batch fit on the concatenated rows —
and therefore ``detect_model`` mines exactly the projections and
outliers a fresh ``detect`` would.  This suite locks that invariant:

1. three distinct interleavings (update/update, merge/update,
   update/merge), swept under every registered counting backend;
2. an append-at-every-row-boundary sweep over all three counter
   implementations (boolean, packed, sharded), mirroring
   ``tests/test_sharded_differential.py`` — ragged packed bytes and
   ragged tail shards included;
3. a hypothesis property: merging discretizers fitted on arbitrary
   row splits then rebinning equals the one-shot fit, for any split;
4. the satellite regressions — ``fit_transform`` reusing fit-time
   codes, drift detection + auto-rebin, event emission, and
   serving-mode refusals.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detector import SubspaceOutlierDetector
from repro.core.params import CountingBackend
from repro.core.subspace import Subspace
from repro.engine.events import InMemoryEventSink
from repro.exceptions import NotFittedError, ValidationError
from repro.grid.backends import registered_backends
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.grid.packed_counter import PackedCubeCounter
from repro.grid.sharded import ShardedCounter, ShardedMaskStore
from repro.model import GridModel

PHI = 4


def make_blocks(seed=7, d=5):
    """Three row blocks with deliberately different distributions.

    Block B is shifted and C is scaled, so updates genuinely move the
    equi-depth cut points at the next rebin — an interleaving bug that
    skipped or double-counted rows would not cancel out.
    """
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(90, d))
    b = rng.normal(loc=2.5, size=(60, d))
    c = rng.normal(scale=3.0, size=(45, d))
    return a, b, c


def all_cubes(n_dims, n_ranges, max_k=2):
    out = []
    for k in range(1, max_k + 1):
        for dims in itertools.combinations(range(n_dims), k):
            for rngs in itertools.product(range(n_ranges), repeat=k):
                out.append(Subspace(dims, rngs))
    return out


def grow(interleaving, blocks, counter_factory=None):
    """Build a model from *blocks* through one named interleaving."""
    a, b, c = blocks
    model = GridModel.fit(a, n_ranges=PHI, counter_factory=counter_factory)
    if interleaving == "update-update":
        model.update(b)
        model.update(c)
    elif interleaving == "merge-update":
        model.merge(GridModel.fit(b, n_ranges=PHI))
        model.update(c)
    elif interleaving == "update-merge":
        model.update(b)
        model.merge(GridModel.fit(c, n_ranges=PHI))
    else:  # pragma: no cover - guard against typos in parametrize
        raise AssertionError(interleaving)
    assert model.rebin() is True
    return model


INTERLEAVINGS = ("update-update", "merge-update", "update-merge")


class TestInterleavingDifferential:
    """Grown-then-rebinned model ≡ one-shot batch fit, bit for bit."""

    @pytest.fixture(scope="class")
    def blocks(self):
        return make_blocks()

    @pytest.fixture(scope="class")
    def batch(self, blocks):
        """The one-shot reference model on the concatenated rows."""
        return GridModel.fit(np.concatenate(blocks, axis=0), n_ranges=PHI)

    @pytest.mark.parametrize("interleaving", INTERLEAVINGS)
    def test_grid_and_codes_bit_identical(self, interleaving, blocks, batch):
        model = grow(interleaving, blocks)
        assert model.n_points == batch.n_points
        for grown, ref in zip(model.boundaries, batch.boundaries):
            np.testing.assert_array_equal(grown, ref)
        np.testing.assert_array_equal(model.cells.codes, batch.cells.codes)

    @pytest.mark.parametrize(
        "interleaving,kind",
        list(itertools.product(INTERLEAVINGS, registered_backends())),
    )
    def test_counts_bit_identical_under_every_backend(
        self, interleaving, kind, blocks, batch
    ):
        backend = (
            None
            if kind == "serial"
            else CountingBackend(kind=kind, n_workers=2, chunk_size=16)
        )
        factory = lambda cells: PackedCubeCounter(cells, backend=backend)
        model = grow(interleaving, blocks, counter_factory=factory)
        cubes = all_cubes(model.n_dims, PHI)
        try:
            grown = model.counter.count_batch(cubes)
        finally:
            model.close()
        np.testing.assert_array_equal(grown, batch.counter.count_batch(cubes))

    @pytest.mark.parametrize("interleaving", INTERLEAVINGS)
    def test_detect_model_matches_one_shot_detect(self, interleaving, blocks):
        def fresh():
            return SubspaceOutlierDetector(
                dimensionality=2, n_ranges=PHI, method="brute_force"
            )

        reference = fresh().detect(np.concatenate(blocks, axis=0))
        model = grow(interleaving, blocks)
        result = fresh().detect_model(model)
        assert result.projections == reference.projections
        np.testing.assert_array_equal(
            result.outlier_indices, reference.outlier_indices
        )
        # The mined projections are installed on the model for serving.
        assert model.projections == reference.projections
        assert result.stats["model"]["model_version"] == model.version

    def test_rebin_is_lazy(self, blocks):
        a, _, _ = blocks
        model = GridModel.fit(a, n_ranges=PHI)
        assert model.rebin() is False  # nothing absorbed since fit
        assert model.rebin(force=True) is True


class TestAppendBoundarySweep:
    """``append_rows`` at every split point ≡ a from-scratch build.

    Mirrors the sharded differential harness: the packed counters pad
    mask rows to whole bytes, so splits that land mid-byte (any
    non-multiple of 8) exercise the byte-stitching path; the sharded
    counter additionally re-packs its ragged tail shard.
    """

    N, D = 40, 4
    SHARD_ROWS = 16

    @pytest.fixture(scope="class")
    def codes(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 3, size=(self.N, self.D), dtype=np.int16)
        codes[rng.random(codes.shape) < 0.1] = -1  # missing values too
        return codes

    @pytest.fixture(scope="class")
    def cubes(self):
        return all_cubes(self.D, 3)

    @pytest.fixture(scope="class")
    def reference(self, codes, cubes):
        counter = CubeCounter(CellAssignment(codes=codes, n_ranges=3))
        return counter.count_batch(cubes)

    def check_split(self, make_counter, codes, cubes, reference, split):
        head = CellAssignment(codes=codes[:split], n_ranges=3)
        counter = make_counter(head)
        try:
            # Warm the memo on the prefix so append advances cached
            # counts by popcount deltas rather than recounting.
            counter.count_batch(cubes)
            assert counter.append_rows(codes[split:]) == self.N - split
            np.testing.assert_array_equal(counter.count_batch(cubes), reference)
            np.testing.assert_array_equal(counter.cells.codes, codes)
        finally:
            counter.close()

    @pytest.mark.parametrize("split", range(1, N + 1))
    def test_cube_counter_every_boundary(self, codes, cubes, reference, split):
        self.check_split(CubeCounter, codes, cubes, reference, split)

    @pytest.mark.parametrize("split", range(1, N + 1))
    def test_packed_counter_every_boundary(self, codes, cubes, reference, split):
        self.check_split(PackedCubeCounter, codes, cubes, reference, split)

    @pytest.mark.parametrize(
        "split",
        # Around every shard boundary (16, 32) plus ragged-byte splits.
        [1, 7, 15, 16, 17, 31, 32, 33, 39],
    )
    def test_sharded_counter_boundaries(
        self, codes, cubes, reference, split, tmp_path
    ):
        def make(cells):
            store = ShardedMaskStore.build(
                cells, tmp_path / f"store{split}", shard_rows=self.SHARD_ROWS
            )
            return ShardedCounter(store, cells)

        self.check_split(make, codes, cubes, reference, split)


class TestDiscretizerMergeProperty:
    """Hypothesis: merge over arbitrary row splits ≡ one-shot fit."""

    @given(
        data=st.data(),
        n_rows=st.integers(min_value=8, max_value=60),
        n_dims=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_equals_one_shot_fit(self, data, n_rows, n_dims, seed):
        rng = np.random.default_rng(seed)
        rows = rng.normal(size=(n_rows, n_dims)) * rng.uniform(0.5, 20)
        cut_indices = data.draw(
            st.lists(
                st.integers(min_value=1, max_value=n_rows - 1),
                min_size=0,
                max_size=4,
                unique=True,
            ).map(sorted)
        )
        parts = np.split(rows, cut_indices)
        parts = [p for p in parts if p.shape[0] > 0]

        merged = EquiDepthDiscretizer(PHI)
        merged.fit(parts[0])
        merged.enable_sketch(parts[0])
        for part in parts[1:]:
            shard = EquiDepthDiscretizer(PHI)
            shard.fit(part)
            shard.enable_sketch(part)
            merged.merge(shard)
        merged.rebin()

        reference = EquiDepthDiscretizer(PHI).fit(rows)
        for got, want in zip(merged.boundaries, reference.boundaries):
            np.testing.assert_array_equal(got, want)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_model_merge_commutes_with_rebin(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(30, 3))
        b = rng.normal(loc=rng.uniform(-3, 3), size=(20, 3))
        model = GridModel.fit(a, n_ranges=PHI)
        model.merge(GridModel.fit(b, n_ranges=PHI))
        model.rebin()
        reference = GridModel.fit(np.concatenate([a, b]), n_ranges=PHI)
        for got, want in zip(model.boundaries, reference.boundaries):
            np.testing.assert_array_equal(got, want)
        np.testing.assert_array_equal(
            model.cells.codes, reference.cells.codes
        )


class TestFitTransformReuse:
    """``fit_transform`` must reuse fit-time codes, not re-transform."""

    def test_transform_not_called_during_fit_transform(
        self, small_data, monkeypatch
    ):
        disc = EquiDepthDiscretizer(5)
        calls = {"n": 0}
        original = EquiDepthDiscretizer.transform

        def spy(self, data):
            calls["n"] += 1
            return original(self, data)

        monkeypatch.setattr(EquiDepthDiscretizer, "transform", spy)
        disc.fit_transform(small_data)
        assert calls["n"] == 0

    def test_bit_identical_to_fit_then_transform(self, small_data):
        fused = EquiDepthDiscretizer(5).fit_transform(small_data)
        staged = EquiDepthDiscretizer(5).fit(small_data).transform(small_data)
        np.testing.assert_array_equal(fused.codes, staged.codes)


class TestDriftAndEvents:
    def drifting_pair(self, sink=None, **kwargs):
        rng = np.random.default_rng(11)
        base = rng.normal(size=(120, 4))
        shifted = rng.normal(loc=8.0, size=(80, 4))
        model = GridModel.fit(base, n_ranges=PHI, event_sink=sink, **kwargs)
        return model, shifted

    def test_update_emits_model_updated(self):
        sink = InMemoryEventSink()
        model, shifted = self.drifting_pair(sink)
        model.update(shifted[:10])
        (event,) = sink.of_type("model_updated")
        assert event.payload["action"] == "update"
        assert event.payload["rows"] == 10
        assert event.payload["version"] == model.version == 1

    def test_shifted_batch_trips_drift(self):
        sink = InMemoryEventSink()
        model, shifted = self.drifting_pair(sink)
        report = model.update(shifted)
        assert report.drifted
        assert report.max_divergence > model.drift_threshold
        (event,) = sink.of_type("grid_drift_detected")
        assert event.payload["drifted_dims"] == [0, 1, 2, 3]
        assert model.stats_dict()["drift_events"] == 1
        assert model.last_drift is report

    def test_in_distribution_update_stays_quiet(self):
        sink = InMemoryEventSink()
        rng = np.random.default_rng(5)
        base = rng.normal(size=(400, 4))
        model = GridModel.fit(base, n_ranges=PHI, event_sink=sink)
        report = model.update(rng.normal(size=(200, 4)))
        assert not report.drifted
        assert sink.of_type("grid_drift_detected") == []

    def test_auto_policy_rebins_on_drift(self):
        sink = InMemoryEventSink()
        model, shifted = self.drifting_pair(sink, rebin_policy="auto")
        version_before = model.version
        model.update(shifted)
        (rebin,) = sink.of_type("rebin_triggered")
        assert rebin.payload["reason"] == "drift"
        stats = model.stats_dict()
        assert stats["rebins"] == 1
        assert model.version > version_before + 1  # update + rebin both bump
        # The recut grid covers the shifted rows again: occupancy reset.
        assert model.occupancy.sum() == 0

    def test_manual_policy_does_not_rebin(self):
        model, shifted = self.drifting_pair()
        model.update(shifted)
        assert model.stats_dict()["rebins"] == 0

    def test_score_emits_score_request(self, small_data):
        sink = InMemoryEventSink()
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=PHI, method="brute_force"
        )
        detector.detect(small_data)
        model = detector.model_
        model.event_sink = sink
        scores = model.score(small_data[:25])
        (event,) = sink.of_type("score_request")
        assert event.payload["n_points"] == 25
        assert event.payload["n_flagged"] == int(
            np.count_nonzero(~np.isnan(scores))
        )

    def test_rebin_clears_projections(self, small_data):
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=PHI, method="brute_force"
        )
        detector.detect(small_data)
        model = detector.model_
        assert model.projections
        model.update(small_data[:5])
        model.rebin()
        assert model.projections == ()
        with pytest.raises(NotFittedError, match="rebin clears them"):
            model.score(small_data)


class TestServingMode:
    @pytest.fixture()
    def serving(self, small_data):
        full = GridModel.fit(small_data, n_ranges=PHI)
        return GridModel.from_snapshot(
            boundaries=[c.tolist() for c in full.boundaries],
            n_ranges=PHI,
        )

    def test_flags(self, serving):
        assert serving.is_serving
        assert not serving.can_rebin
        assert serving.counter is None and serving.raw_data is None

    def test_rebin_refuses(self, serving):
        with pytest.raises(ValidationError, match="serving"):
            serving.rebin()

    def test_merge_refuses(self, serving, small_data):
        with pytest.raises(ValidationError, match="serving"):
            serving.merge(GridModel.fit(small_data, n_ranges=PHI))

    def test_update_tracks_sketch_and_occupancy(self, serving, rng):
        rows = rng.normal(size=(30, serving.n_dims))
        serving.update(rows)
        assert serving.n_points == 30
        assert serving.occupancy.sum() == serving.n_dims * 30
        assert serving.discretizer.sketch.n_seen == 30

    def test_detect_model_refuses_serving(self, serving):
        detector = SubspaceOutlierDetector(dimensionality=2, n_ranges=PHI)
        with pytest.raises(ValidationError, match="serving"):
            detector.detect_model(serving)
