"""Coverage for paths the module-focused suites touch only lightly."""

import subprocess
import sys

import pytest

from repro import EvolutionaryConfig, SubspaceOutlierDetector
from repro.core.results import ScoredProjection
from repro.core.subspace import Subspace
from repro.data.registry import load_dataset
from repro.eval.comparison import ComparisonRow, build_table1, render_table
from repro.eval.harness import timed_detection
from repro.search.outcome import GenerationRecord, SearchOutcome


class TestComparisonRowEdges:
    @pytest.fixture(scope="class")
    def cells(self):
        dataset = load_dataset("machine")
        config = EvolutionaryConfig(population_size=16, max_generations=10)
        brute = timed_detection(dataset, "brute")
        gen = timed_detection(dataset, "gen", config=config, random_state=0)
        gen_opt = timed_detection(dataset, "gen_opt", config=config, random_state=0)
        return dataset, brute, gen, gen_opt

    def test_star_requires_brute(self, cells):
        dataset, brute, gen, gen_opt = cells
        row = ComparisonRow(dataset.name, dataset.n_dims, None, gen, gen_opt)
        assert not row.gen_opt_matches_brute

    def test_star_requires_match(self, cells):
        dataset, brute, gen, gen_opt = cells
        row = ComparisonRow(dataset.name, dataset.n_dims, brute, gen, gen_opt)
        expected = abs(gen_opt.quality - brute.quality) <= max(
            1e-6, 1e-3 * abs(brute.quality)
        )
        assert row.gen_opt_matches_brute == expected

    def test_render_includes_star_marker(self, cells):
        dataset, brute, gen, gen_opt = cells
        # Force a star by reusing brute as gen_opt.
        forced = ComparisonRow(dataset.name, dataset.n_dims, brute, gen, brute)
        assert "(*)" in render_table([forced])

    def test_multi_dataset_table(self):
        config = EvolutionaryConfig(population_size=14, max_generations=8)
        rows = build_table1(
            [load_dataset("machine"), load_dataset("breast_cancer")],
            config=config,
            random_state=0,
        )
        text = render_table(rows)
        assert "machine (8)" in text
        assert "breast_cancer (14)" in text


class TestExperimentResultRow:
    def test_nan_quality_renders_none(self):
        dataset = load_dataset("machine")
        cell = timed_detection(dataset, "brute")
        import dataclasses

        broken = dataclasses.replace(cell, quality=float("nan"))
        assert broken.row()["quality"] is None

    def test_extra_fields(self):
        dataset = load_dataset("machine")
        cell = timed_detection(dataset, "brute")
        assert cell.extra["k"] >= 1
        assert cell.extra["phi"] == dataset.metadata["phi"]


class TestSearchOutcomeHistoryField:
    def test_history_tuple_coerced(self):
        record = GenerationRecord(
            restart=0,
            generation=0,
            best_coefficient=-1.0,
            best_set_size=1,
            population_best=-1.0,
            n_feasible=10,
            convergence=0.1,
        )
        outcome = SearchOutcome(
            projections=(ScoredProjection(Subspace((0,), (0,)), 1, -1.0),),
            history=[record],
        )
        assert isinstance(outcome.history, tuple)
        assert outcome.history[0].generation == 0


class TestDetectorRepeatedUse:
    def test_refit_replaces_state(self, rng):
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=3, n_projections=3, method="brute_force"
        )
        first = detector.detect(rng.normal(size=(60, 2)))
        second = detector.detect(rng.normal(size=(80, 3)))
        assert detector.result_ is second
        assert detector.cells_.n_dims == 3
        assert first.n_points == 60

    def test_score_uses_latest_fit(self, rng):
        detector = SubspaceOutlierDetector(
            dimensionality=1, n_ranges=3, n_projections=3, method="brute_force"
        )
        detector.detect(rng.normal(size=(60, 2)))
        detector.detect(rng.normal(size=(80, 3)))
        assert detector.score(rng.normal(size=(5, 3))).shape == (5,)


class TestResultRankingStability:
    def test_ranked_outliers_deterministic(self, rng):
        data = rng.normal(size=(150, 4))
        detector = SubspaceOutlierDetector(
            dimensionality=2, n_ranges=3, n_projections=10, method="brute_force"
        )
        a = detector.detect(data).ranked_outliers()
        b = detector.detect(data).ranked_outliers()
        assert a == b


class TestExampleSmoke:
    def test_quickstart_runs(self):
        completed = subprocess.run(
            [sys.executable, "examples/quickstart.py"],
            capture_output=True,
            text=True,
            timeout=120,
            cwd="/root/repo",
        )
        assert completed.returncode == 0, completed.stderr
        assert "quickstart OK" in completed.stdout


class TestVersionMetadata:
    def test_version_string(self):
        import repro

        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
