"""Tests for BestProjectionSet (the paper's BestSet tracker)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.results import ScoredProjection
from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.search.best_set import BestProjectionSet


def proj(dim, rng_, coefficient, count=1):
    return ScoredProjection(Subspace((dim,), (rng_,)), count, coefficient)


class TestTopM:
    def test_keeps_most_negative(self):
        best = BestProjectionSet(2)
        best.offer(proj(0, 0, -1.0))
        best.offer(proj(1, 0, -3.0))
        best.offer(proj(2, 0, -2.0))
        coefficients = [p.coefficient for p in best.entries()]
        assert coefficients == [-3.0, -2.0]

    def test_entries_sorted_most_negative_first(self):
        best = BestProjectionSet(5)
        for i, c in enumerate([-1.0, -5.0, -3.0]):
            best.offer(proj(i, 0, c))
        coefficients = [p.coefficient for p in best.entries()]
        assert coefficients == sorted(coefficients)

    def test_rejects_when_full_and_worse(self):
        best = BestProjectionSet(1)
        assert best.offer(proj(0, 0, -2.0))
        assert not best.offer(proj(1, 0, -1.0))
        assert best.best().coefficient == -2.0

    def test_duplicates_kept_once(self):
        best = BestProjectionSet(5)
        assert best.offer(proj(0, 0, -2.0))
        assert not best.offer(proj(0, 0, -2.0))
        assert len(best) == 1

    def test_contains(self):
        best = BestProjectionSet(5)
        best.offer(proj(0, 1, -2.0))
        assert Subspace((0,), (1,)) in best
        assert Subspace((0,), (2,)) not in best

    def test_displacement_updates_seen(self):
        best = BestProjectionSet(1)
        best.offer(proj(0, 0, -1.0))
        best.offer(proj(1, 0, -2.0))
        # The displaced cube can re-enter later if it beats the current.
        assert Subspace((0,), (0,)) not in best
        assert len(best) == 1


class TestNonEmptyFilter:
    def test_empty_cubes_skipped_by_default(self):
        best = BestProjectionSet(5)
        assert not best.offer(proj(0, 0, -9.0, count=0))
        assert len(best) == 0

    def test_empty_cubes_kept_when_allowed(self):
        best = BestProjectionSet(5, require_nonempty=False)
        assert best.offer(proj(0, 0, -9.0, count=0))


class TestThreshold:
    def test_threshold_filters(self):
        best = BestProjectionSet(10, threshold=-3.0)
        assert best.offer(proj(0, 0, -3.5))
        assert not best.offer(proj(1, 0, -2.9))
        assert len(best) == 1

    def test_unbounded_with_threshold(self):
        best = BestProjectionSet(None, threshold=-1.0)
        for i in range(50):
            best.offer(proj(i, 0, -2.0))
        assert len(best) == 50

    def test_unbounded_without_threshold_rejected(self):
        with pytest.raises(ValidationError):
            BestProjectionSet(None)


class TestWouldAccept:
    def test_true_when_not_full(self):
        best = BestProjectionSet(2)
        assert best.would_accept(+5.0)

    def test_respects_threshold(self):
        best = BestProjectionSet(2, threshold=-3.0)
        assert not best.would_accept(-2.0)
        assert best.would_accept(-3.0)

    def test_compares_to_worst_kept(self):
        best = BestProjectionSet(1)
        best.offer(proj(0, 0, -2.0))
        assert not best.would_accept(-1.5)
        assert best.would_accept(-2.5)


class TestStats:
    def test_mean_coefficient(self):
        best = BestProjectionSet(5)
        best.offer(proj(0, 0, -1.0))
        best.offer(proj(1, 0, -3.0))
        assert best.mean_coefficient() == pytest.approx(-2.0)

    def test_mean_of_empty_is_nan(self):
        assert BestProjectionSet(5).mean_coefficient() != BestProjectionSet(
            5
        ).mean_coefficient()

    def test_worst_kept_of_empty_is_inf(self):
        assert BestProjectionSet(3).worst_kept_coefficient() == float("inf")

    def test_offer_counters(self):
        best = BestProjectionSet(1)
        best.offer(proj(0, 0, -1.0))
        best.offer(proj(1, 0, -0.5))
        assert best.n_offers == 2
        assert best.n_accepted == 1


@settings(max_examples=50)
@given(
    coefficients=st.lists(
        st.floats(-100, 100, allow_nan=False), min_size=0, max_size=60
    ),
    m=st.integers(1, 10),
)
def test_property_equals_true_top_m(coefficients, m):
    """The kept set is exactly the m most-negative offered coefficients."""
    best = BestProjectionSet(m, require_nonempty=False)
    for i, c in enumerate(coefficients):
        best.offer(ScoredProjection(Subspace((i,), (0,)), 1, c))
    kept = [p.coefficient for p in best.entries()]
    assert kept == sorted(coefficients)[: min(m, len(coefficients))]
