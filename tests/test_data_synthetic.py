"""Tests for the synthetic data generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    correlated_block_data,
    figure1_views,
    plant_rare_combinations,
    uniform_noise,
)
from repro.exceptions import DatasetError, ValidationError


class TestCorrelatedBlocks:
    def test_shapes_and_blocks(self):
        data, blocks = correlated_block_data(200, 10, 3, random_state=0)
        assert data.shape == (200, 10)
        assert blocks == ((0, 1), (2, 3), (4, 5))

    def test_block_dims_strongly_correlated(self):
        data, blocks = correlated_block_data(500, 8, 2, random_state=1)
        for a, b in blocks:
            r = np.corrcoef(data[:, a], data[:, b])[0, 1]
            assert r > 0.9

    def test_noise_dims_uncorrelated(self):
        data, _ = correlated_block_data(2000, 8, 2, random_state=2)
        r = np.corrcoef(data[:, 6], data[:, 7])[0, 1]
        assert abs(r) < 0.1

    def test_deterministic(self):
        a, _ = correlated_block_data(100, 6, 2, random_state=5)
        b, _ = correlated_block_data(100, 6, 2, random_state=5)
        np.testing.assert_array_equal(a, b)

    def test_blocks_must_fit(self):
        with pytest.raises(ValidationError):
            correlated_block_data(100, 5, 3, block_size=2)

    def test_zero_blocks_pure_noise(self):
        data, blocks = correlated_block_data(50, 4, 0, random_state=0)
        assert blocks == ()
        assert data.shape == (50, 4)


class TestPlantRareCombinations:
    def test_planted_points_marginally_inside_range(self):
        data, blocks = correlated_block_data(400, 6, 2, random_state=3)
        lo0, hi0 = data[:, 0].min(), data[:, 0].max()
        plan = plant_rare_combinations(data, blocks, 5, random_state=3)
        assert plan.n_anomalies == 5
        for point in plan.indices:
            assert lo0 - 1 <= data[point, 0] <= hi0 + 1

    def test_planted_combination_is_jointly_rare(self):
        data, blocks = correlated_block_data(600, 6, 1, random_state=4)
        plan = plant_rare_combinations(data, blocks, 1, random_state=4)
        point = plan.indices[0]
        a, b = plan.subspaces[0]
        # Count background points in the same low/high corner.
        lo_cut = np.quantile(data[:, a], 0.2)
        hi_cut = np.quantile(data[:, b], 0.8)
        corner = (data[:, a] <= lo_cut) & (data[:, b] >= hi_cut)
        assert corner[point]
        assert corner.sum() <= 6  # nearly empty for r ~ 0.97 pairs

    def test_explicit_indices(self):
        data, blocks = correlated_block_data(100, 4, 1, random_state=0)
        plan = plant_rare_combinations(
            data, blocks, indices=[7, 13], random_state=0
        )
        np.testing.assert_array_equal(plan.indices, [7, 13])

    def test_empty_indices(self):
        data, blocks = correlated_block_data(100, 4, 1, random_state=0)
        plan = plant_rare_combinations(data, blocks, indices=[], random_state=0)
        assert plan.n_anomalies == 0

    def test_blocks_round_robin(self):
        data, blocks = correlated_block_data(100, 8, 2, random_state=0)
        plan = plant_rare_combinations(data, blocks, 4, random_state=0)
        assert plan.subspaces == (
            blocks[0][:2],
            blocks[1][:2],
            blocks[0][:2],
            blocks[1][:2],
        )

    def test_requires_blocks(self):
        data = np.zeros((10, 2))
        with pytest.raises(DatasetError):
            plant_rare_combinations(data, (), 1)

    def test_too_many_anomalies(self):
        data, blocks = correlated_block_data(10, 4, 1, random_state=0)
        with pytest.raises(ValidationError):
            plant_rare_combinations(data, blocks, 11)

    def test_out_of_range_indices(self):
        data, blocks = correlated_block_data(10, 4, 1, random_state=0)
        with pytest.raises(ValidationError):
            plant_rare_combinations(data, blocks, indices=[99])


class TestUniformNoise:
    def test_range_and_shape(self):
        data = uniform_noise(100, 5, random_state=0)
        assert data.shape == (100, 5)
        assert data.min() >= 0.0
        assert data.max() < 1.0


class TestFigure1Views:
    def test_dataset_layout(self):
        dataset = figure1_views(random_state=0)
        assert dataset.n_points == 500
        assert dataset.n_dims == 80
        np.testing.assert_array_equal(dataset.planted_outliers, [498, 499])
        assert dataset.metadata["views"]["view1"] == (0, 1)
        assert dataset.metadata["views"]["view4"] == (2, 3)

    def test_outlier_a_breaks_view1_only(self):
        dataset = figure1_views(random_state=0)
        data = dataset.values
        a = dataset.metadata["outlier_A"]
        # Low on view1_x, high on view1_y...
        assert data[a, 0] <= np.quantile(data[:, 0], 0.1)
        assert data[a, 1] >= np.quantile(data[:, 1], 0.9)
        # ... and unremarkable on view 4 (inside the central 80%).
        assert (
            np.quantile(data[:, 2], 0.05)
            < data[a, 2]
            < np.quantile(data[:, 2], 0.95)
        ) or (
            np.quantile(data[:, 3], 0.05)
            < data[a, 3]
            < np.quantile(data[:, 3], 0.95)
        )

    def test_deterministic(self):
        a = figure1_views(random_state=9)
        b = figure1_views(random_state=9)
        np.testing.assert_array_equal(a.values, b.values)
