"""Tests for repro.core.subspace (cube representation and codec)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.subspace import Subspace
from repro.exceptions import ValidationError


class TestConstruction:
    def test_basic(self):
        cube = Subspace((1, 3), (2, 8))
        assert cube.dims == (1, 3)
        assert cube.ranges == (2, 8)
        assert cube.dimensionality == 2

    def test_empty(self):
        cube = Subspace.empty()
        assert cube.dimensionality == 0
        assert len(cube) == 0

    def test_from_pairs_sorts(self):
        cube = Subspace.from_pairs([(3, 8), (1, 2)])
        assert cube.dims == (1, 3)
        assert cube.ranges == (2, 8)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError, match="equal length"):
            Subspace((1, 2), (0,))

    def test_rejects_unsorted_dims(self):
        with pytest.raises(ValidationError, match="ascending"):
            Subspace((3, 1), (0, 0))

    def test_rejects_duplicate_dims(self):
        with pytest.raises(ValidationError, match="ascending"):
            Subspace((1, 1), (0, 0))

    def test_rejects_negative_dims(self):
        with pytest.raises(ValidationError):
            Subspace((-1,), (0,))

    def test_rejects_negative_ranges(self):
        with pytest.raises(ValidationError):
            Subspace((0,), (-2,))

    def test_hashable_and_equal(self):
        a = Subspace((0, 2), (1, 1))
        b = Subspace.from_pairs([(2, 1), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestStringCodec:
    def test_paper_example_roundtrip(self):
        # "*3*9": second dim fixed to range 3, fourth to range 9 (1-based).
        cube = Subspace.from_string("*3*9")
        assert cube.dims == (1, 3)
        assert cube.ranges == (2, 8)
        assert cube.to_string(4) == "*3*9"

    def test_delimited_dialect(self):
        cube = Subspace.from_string("*,12,*,3")
        assert cube.dims == (1, 3)
        assert cube.ranges == (11, 2)
        assert cube.to_string(4, compact=False) == "*,12,*,3"

    def test_to_string_auto_switches_to_delimited(self):
        cube = Subspace((0,), (10,))
        assert cube.to_string(2) == "11,*"

    def test_compact_forced_raises_on_wide_range(self):
        cube = Subspace((0,), (12,))
        with pytest.raises(ValidationError, match="compact"):
            cube.to_string(1, compact=True)

    def test_rejects_empty_string(self):
        with pytest.raises(ValidationError):
            Subspace.from_string("")

    def test_rejects_zero_range(self):
        with pytest.raises(ValidationError, match="1-based"):
            Subspace.from_string("*0")

    def test_rejects_garbage(self):
        with pytest.raises(ValidationError):
            Subspace.from_string("*x")

    def test_to_string_rejects_short_n_dims(self):
        cube = Subspace((5,), (0,))
        with pytest.raises(ValidationError):
            cube.to_string(3)

    @given(
        st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 8)),
            max_size=8,
            unique_by=lambda p: p[0],
        )
    )
    def test_roundtrip_property(self, pairs):
        cube = Subspace.from_pairs(pairs)
        text = cube.to_string(16)
        assert Subspace.from_string(text) == cube


class TestAlgebra:
    def test_extended_adds_pair(self):
        cube = Subspace((1,), (4,))
        bigger = cube.extended(0, 2)
        assert bigger.dims == (0, 1)
        assert bigger.ranges == (2, 4)

    def test_extended_rejects_existing_dim(self):
        cube = Subspace((1,), (4,))
        with pytest.raises(ValidationError, match="already fixed"):
            cube.extended(1, 0)

    def test_restricted_to(self):
        cube = Subspace((0, 2, 5), (1, 2, 3))
        assert cube.restricted_to([2, 5]) == Subspace((2, 5), (2, 3))
        assert cube.restricted_to([]) == Subspace.empty()

    def test_is_subspace_of(self):
        small = Subspace((1,), (2,))
        big = Subspace((0, 1), (0, 2))
        assert small.is_subspace_of(big)
        assert not big.is_subspace_of(small)
        assert Subspace.empty().is_subspace_of(big)

    def test_is_subspace_of_range_mismatch(self):
        small = Subspace((1,), (3,))
        big = Subspace((0, 1), (0, 2))
        assert not small.is_subspace_of(big)

    def test_range_for(self):
        cube = Subspace((1, 4), (7, 0))
        assert cube.range_for(1) == 7
        assert cube.range_for(4) == 0
        assert cube.range_for(0) is None

    def test_uses_dimension(self):
        cube = Subspace((2,), (0,))
        assert cube.uses_dimension(2)
        assert not cube.uses_dimension(0)


class TestCoverage:
    def test_covers_matches_rows(self):
        cells = np.array([[0, 1], [2, 1], [0, 3]], dtype=np.int16)
        cube = Subspace((1,), (1,))
        np.testing.assert_array_equal(cube.covers(cells), [True, True, False])

    def test_covers_conjunction(self):
        cells = np.array([[0, 1], [0, 2], [1, 1]], dtype=np.int16)
        cube = Subspace((0, 1), (0, 1))
        np.testing.assert_array_equal(cube.covers(cells), [True, False, False])

    def test_missing_never_matches(self):
        cells = np.array([[-1], [0]], dtype=np.int16)
        cube = Subspace((0,), (0,))
        np.testing.assert_array_equal(cube.covers(cells), [False, True])

    def test_empty_subspace_covers_everything(self):
        cells = np.zeros((4, 2), dtype=np.int16)
        np.testing.assert_array_equal(
            Subspace.empty().covers(cells), [True] * 4
        )

    def test_covers_validates_dimensions(self):
        cells = np.zeros((2, 2), dtype=np.int16)
        with pytest.raises(ValidationError):
            Subspace((5,), (0,)).covers(cells)

    def test_covers_rejects_1d_cells(self):
        with pytest.raises(ValidationError):
            Subspace((0,), (0,)).covers(np.zeros(3, dtype=np.int16))


class TestDescribe:
    def test_with_names(self):
        cube = Subspace((0, 2), (1, 4))
        text = cube.describe(["crime", "tax", "age"])
        assert "crime∈range 2" in text
        assert "age∈range 5" in text

    def test_without_names(self):
        assert "dim1" in Subspace((1,), (0,)).describe()

    def test_empty(self):
        assert Subspace.empty().describe() == "(empty subspace)"
