"""Chaos matrix for ``repro.resilience``: every fault point, both pools.

The failure envelope (docs/resilience.md) makes two promises, and this
suite checks both for **every registered fault point**:

* a *recoverable* injected fault — transient I/O error, one corrupt
  shard, a failed in-memory allocation — is survived, the completed
  run is **bit-identical** to the fault-free run, and the recovery is
  recorded in ``result.stats["resilience"]``;
* an *unrecoverable* fault surfaces as a typed
  :class:`~repro.exceptions.ReproError` subclass — never a raw
  ``OSError`` or ``MemoryError``.

Injection is deterministic (per-point invocation counters, no clocks,
no RNG), so every scenario replays exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detector import SubspaceOutlierDetector
from repro.core.params import CountingBackend
from repro.engine.events import InMemoryEventSink
from repro.exceptions import (
    CheckpointError,
    ReproError,
    ResourceError,
    SearchCancelled,
    ValidationError,
)
from repro.grid.cells import CellAssignment
from repro.grid.counter import CubeCounter
from repro.grid.sharded import ShardedCounter, ShardedMaskStore
from repro.resilience import (
    DegradationLadder,
    FaultSpec,
    RetryPolicy,
    ResilienceReport,
    active_injector,
    fault_injection,
    maybe_inject,
)
from repro.run.checkpoint import CheckpointStore
from repro.run.controller import RunController
from tests.test_backend_faults import all_cubes

N_POINTS, N_DIMS, N_RANGES = 96, 4, 3
SHARD_ROWS = 24  # -> 4 shards


def make_data(seed: int = 11) -> np.ndarray:
    rng = np.random.default_rng(seed)
    data = rng.normal(size=(N_POINTS, N_DIMS))
    data[:4] += 6.0  # a planted sparse corner
    return data


DATA = make_data()


def run_detect(**kwargs) -> object:
    kwargs.setdefault("dimensionality", 2)
    kwargs.setdefault("n_ranges", N_RANGES)
    kwargs.setdefault("n_projections", 5)
    kwargs.setdefault("method", "brute_force")
    kwargs.setdefault("random_state", 0)
    detector = SubspaceOutlierDetector(**kwargs)
    return detector.detect(DATA)


def signature(result) -> tuple:
    """Everything result-shaped that must be bit-identical."""
    return (
        [
            (p.subspace.dims, p.subspace.ranges, p.coefficient)
            for p in result.projections
        ],
        result.outlier_indices.tolist(),
        {k: tuple(v) for k, v in result.coverage.items()},
    )


@pytest.fixture(scope="module")
def baseline():
    """Fault-free in-memory run (serial backend)."""
    return signature(run_detect())


@pytest.fixture(scope="module")
def cells() -> CellAssignment:
    rng = np.random.default_rng(3)
    codes = rng.integers(0, N_RANGES, size=(N_POINTS, N_DIMS), dtype=np.int16)
    return CellAssignment(codes=codes, n_ranges=N_RANGES)


@pytest.fixture(scope="module")
def cubes(cells):
    return all_cubes(cells.n_dims, cells.n_ranges, 2)


@pytest.fixture(scope="module")
def serial_counts(cells, cubes):
    counter = CubeCounter(cells)
    try:
        return counter.count_batch(cubes).tolist()
    finally:
        counter.close()


# ======================================================================
# unit layer: injection, retry, report, ladder
# ======================================================================
class TestFaultInjection:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultSpec("not_a_point")  # repro-lint: disable=RPL014

    def test_trigger_and_times_are_deterministic(self):
        with fault_injection(
            FaultSpec("shard_read", trigger=1, times=2)
        ) as injector:
            maybe_inject("shard_read")  # invocation 0: below trigger
            with pytest.raises(OSError):
                maybe_inject("shard_read")  # 1: fires
            with pytest.raises(OSError):
                maybe_inject("shard_read")  # 2: fires (times=2)
            maybe_inject("shard_read")  # 3: exhausted
            assert injector.invocations("shard_read") == 4
            assert injector.fired() == 2

    def test_persistent_fault_fires_forever(self):
        with fault_injection(FaultSpec("checkpoint_load", times=None)):
            for _ in range(5):
                with pytest.raises(OSError):
                    maybe_inject("checkpoint_load")

    def test_unarmed_points_are_noops(self):
        assert active_injector() is None
        maybe_inject("atomic_write")  # no injector: free pass

    def test_nested_arming_rejected(self):
        with fault_injection(FaultSpec("shard_read")):
            with pytest.raises(RuntimeError, match="already active"):
                with fault_injection(FaultSpec("shard_open")):
                    pass

    def test_custom_error_instance(self):
        marker = OSError("very specific")
        with fault_injection(FaultSpec("shard_read", error=marker)):
            with pytest.raises(OSError, match="very specific"):
                maybe_inject("shard_read")


class TestRetryPolicy:
    def test_recovers_after_transient_failures(self):
        calls = {"n": 0}
        recovered = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=3, backoff=0.0)
        out = policy.call(flaky, sleep=lambda s: None,
                          on_recover=recovered.append)
        assert out == "ok"
        assert calls["n"] == 3
        assert recovered == [2]

    def test_reraises_after_budget_exhausted(self):
        policy = RetryPolicy(max_attempts=2, backoff=0.0)
        with pytest.raises(OSError, match="persistent"):
            policy.call(
                lambda: (_ for _ in ()).throw(OSError("persistent")),
                sleep=lambda s: None,
            )

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("not transient")

        policy = RetryPolicy(max_attempts=5, backoff=0.0)
        with pytest.raises(ValueError):
            policy.call(broken, sleep=lambda s: None)
        assert calls["n"] == 1

    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(max_attempts=9, backoff=0.1, backoff_cap=0.35)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.35)
        assert policy.delay(8) == pytest.approx(0.35)

    def test_jitter_is_deterministic(self):
        policy = RetryPolicy(jitter=0.5)
        assert policy.delay(3) == policy.delay(3)


class TestReportAndLadder:
    def test_report_accumulates_and_serializes(self):
        report = ResilienceReport()
        assert not report.degraded
        report.record_retry("shard.read", 2)
        report.record_recovery("shard_read")
        report.record_degradation("counting-pool", "process", "serial", "x")
        report.record_quarantine(3, "checksum mismatch")
        snap = report.as_dict()
        assert snap["degraded"] is True
        assert snap["retries"] == {"shard.read": 2}
        assert snap["recoveries"] == {"shard_read": 1}
        assert snap["ladder"] == {"counting-pool": "serial"}
        assert snap["quarantines"] == [
            {"shard": 3, "reason": "checksum mismatch"}
        ]

    def test_merge_folds_child_into_parent(self):
        parent, child = ResilienceReport(), ResilienceReport()
        parent.record_retry("a")
        child.record_retry("a")
        child.record_degradation("kernel", "native", "numpy", "crash")
        parent.merge(child)
        assert parent.retries == {"a": 2}
        assert parent.ladder == {"kernel": "numpy"}

    def test_guarded_falls_back_and_records(self):
        report = ResilienceReport()
        sink = InMemoryEventSink()
        ladder = DegradationLadder(report, lambda: sink)
        seen = []

        out = ladder.guarded(
            "kernel", "native", "numpy",
            primary=lambda: (_ for _ in ()).throw(RuntimeError("segv")),
            fallback=lambda: 42,
            on_downgrade=seen.append,
        )
        assert out == 42
        assert len(seen) == 1
        assert report.ladder == {"kernel": "numpy"}
        [event] = sink.of_type("degradation_applied")
        assert event.payload["from"] == "native"
        assert event.payload["to"] == "numpy"

    def test_guarded_never_swallows_cancellation(self):
        ladder = DegradationLadder(ResilienceReport())

        def cancelled():
            raise SearchCancelled("stop")

        with pytest.raises(SearchCancelled):
            ladder.guarded("kernel", "a", "b", cancelled, lambda: 0)


# ======================================================================
# chaos matrix: fault point x recoverable / unrecoverable
# ======================================================================
class TestShardReadFaults:
    def test_transient_read_recovers_bit_identical(self, tmp_path, baseline):
        with fault_injection(FaultSpec("shard_read", times=1)):
            result = run_detect(
                mmap_dir=tmp_path / "store", shard_rows=SHARD_ROWS
            )
        assert signature(result) == baseline
        resilience = result.stats["resilience"]
        assert resilience["retries"].get("shard.read", 0) >= 1
        assert resilience["recoveries"].get("shard_read", 0) >= 1

    def test_persistent_read_without_codes_is_typed(self, cells, tmp_path):
        from repro.core.subspace import Subspace

        store = ShardedMaskStore.build(
            cells, tmp_path / "store", shard_rows=SHARD_ROWS
        )
        counter = ShardedCounter(store)  # no cells: nothing to rebuild from
        with fault_injection(FaultSpec("shard_read", times=None)):
            with pytest.raises(ResourceError, match="no grid codes"):
                counter.count_batch([Subspace((0,), (0,))])

    def test_persistent_read_after_rebuild_is_typed(self, cells, tmp_path):
        from repro.core.subspace import Subspace

        store = ShardedMaskStore.build(
            cells, tmp_path / "store", shard_rows=SHARD_ROWS
        )
        counter = ShardedCounter(store, cells=cells)
        with fault_injection(FaultSpec("shard_read", times=None)):
            with pytest.raises(ReproError, match="still unreadable"):
                counter.count_batch([Subspace((0,), (0,))])


class TestShardOpenFaults:
    def test_transient_open_rebuilds_and_matches(self, tmp_path, baseline):
        directory = tmp_path / "store"
        first = run_detect(mmap_dir=directory, shard_rows=SHARD_ROWS)
        assert signature(first) == baseline
        # Second run would reuse the store; the injected open failure
        # forces a silent rebuild from codes instead.
        with fault_injection(FaultSpec("shard_open", times=1)) as injector:
            second = run_detect(mmap_dir=directory, shard_rows=SHARD_ROWS)
            assert injector.fired() == 1
        assert signature(second) == baseline

    def test_persistent_open_is_typed(self, cells, tmp_path):
        directory = tmp_path / "store"
        ShardedMaskStore.build(cells, directory, shard_rows=SHARD_ROWS)
        with fault_injection(FaultSpec("shard_open", times=None)):
            with pytest.raises(ValidationError, match="unreadable"):
                ShardedMaskStore.open(directory)


class TestCheckpointLoadFaults:
    def test_transient_load_recovers_payload(self, tmp_path):
        report = ResilienceReport()
        store = CheckpointStore(tmp_path, report=report)
        store.save("search", {"state": [1, 2, 3]})
        with fault_injection(FaultSpec("checkpoint_load", times=1)):
            payload = store.load("search")
        assert payload == {"state": [1, 2, 3]}
        assert report.retries == {"checkpoint.load": 1}
        assert report.recoveries == {"checkpoint_load": 1}

    def test_persistent_load_is_typed(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save("search", {"state": 1})
        store.save("search", {"state": 2})  # rotates a .prev fallback
        with fault_injection(FaultSpec("checkpoint_load", times=None)):
            with pytest.raises(CheckpointError, match="corrupt"):
                store.load("search")


class TestAtomicWriteFaults:
    def test_checkpoint_disk_full_survives_bit_identical(self, tmp_path):
        clean_ctl = RunController(checkpoint_dir=tmp_path / "clean")
        clean = run_detect(controller=clean_ctl)
        faulty_ctl = RunController(checkpoint_dir=tmp_path / "chaos")
        with fault_injection(FaultSpec("atomic_write", times=1)):
            result = run_detect(controller=faulty_ctl)
        assert signature(result) == signature(clean)
        resilience = result.stats["resilience"]
        assert resilience["recoveries"].get("atomic_write", 0) >= 1

    def test_persistent_disk_full_on_store_build_is_typed(
        self, cells, tmp_path
    ):
        with fault_injection(FaultSpec("atomic_write", times=None)):
            with pytest.raises(ResourceError, match="disk full"):
                ShardedMaskStore.build(
                    cells, tmp_path / "store", shard_rows=SHARD_ROWS
                )


class TestPackedAllocFaults:
    def test_memory_error_spills_to_sharded(self, tmp_path, baseline):
        sink = InMemoryEventSink()
        with fault_injection(FaultSpec("packed_alloc", times=1)):
            result = run_detect(spill_dir=tmp_path / "spill", event_sink=sink)
        assert signature(result) == baseline
        resilience = result.stats["resilience"]
        assert resilience["ladder"] == {"mask-storage": "sharded"}
        [step] = resilience["degradations"]
        assert step["from"] == "in-memory"
        assert step["to"] == "sharded"
        assert "MemoryError" in step["reason"]
        assert resilience["recoveries"].get("packed_alloc", 0) >= 1
        assert (tmp_path / "spill" / "manifest.json").exists()
        assert len(sink.of_type("degradation_applied")) == 1
        assert len(sink.of_type("fault_recovered")) == 1

    def test_memory_error_spills_packed_counter_too(self, tmp_path, baseline):
        with fault_injection(FaultSpec("packed_alloc", times=1)):
            result = run_detect(packed=True, spill_dir=tmp_path / "spill")
        assert signature(result) == baseline
        assert result.stats["resilience"]["degraded"] is True

    def test_unrecoverable_oom_is_typed(self, tmp_path):
        with fault_injection(FaultSpec("packed_alloc", times=None)):
            with pytest.raises(ResourceError, match="out of memory"):
                run_detect(spill_dir=tmp_path / "spill")

    def test_spill_without_spill_dir_uses_tempdir(self, baseline):
        with fault_injection(FaultSpec("packed_alloc", times=1)):
            result = run_detect()
        assert signature(result) == baseline
        assert result.stats["resilience"]["degraded"] is True


class TestShardQuarantine:
    """Satellite: one corrupt shard is rebuilt, exactly, bit-identically."""

    def test_corrupt_shard_is_quarantined_and_rebuilt(
        self, tmp_path, baseline
    ):
        directory = tmp_path / "store"
        first = run_detect(mmap_dir=directory, shard_rows=SHARD_ROWS)
        assert signature(first) == baseline
        shard_path = directory / "shard_00001.bin"
        original = shard_path.read_bytes()
        corrupted = bytes(b ^ 0xFF for b in original[:64]) + original[64:]
        shard_path.write_bytes(corrupted)

        second = run_detect(
            mmap_dir=directory, shard_rows=SHARD_ROWS, verify_shards=True
        )
        assert signature(second) == baseline
        resilience = second.stats["resilience"]
        assert len(resilience["quarantines"]) == 1
        assert resilience["quarantines"][0]["shard"] == 1
        assert "checksum mismatch" in resilience["quarantines"][0]["reason"]
        # The rebuild restored the exact build-time bytes on disk.
        assert shard_path.read_bytes() == original

    def test_rebuild_refuses_mismatched_codes(self, cells, tmp_path):
        store = ShardedMaskStore.build(
            cells, tmp_path / "store", shard_rows=SHARD_ROWS
        )
        other = np.array(cells.codes)
        other[0, 0] = (other[0, 0] + 1) % N_RANGES
        with pytest.raises(ValidationError, match="does not reproduce"):
            store.rebuild_shard(0, other)


class TestPoolChaosMatrix:
    """Both pool types under injected faults: counts stay bit-identical."""

    def test_sharded_pool_survives_shard_read_faults(
        self, cells, cubes, serial_counts, tmp_path
    ):
        store = ShardedMaskStore.build(
            cells, tmp_path / "store", shard_rows=SHARD_ROWS
        )
        backend = CountingBackend(
            kind="process", n_workers=2, chunk_size=8, retry_backoff=0.01
        )
        counter = ShardedCounter(store, cells=cells, backend=backend)
        try:
            # trigger=0 so forked workers (independent counters) fire on
            # their first read; the pool retries and the parent-side
            # serial path reads through the resilient reader.
            with fault_injection(FaultSpec("shard_read", times=1)):
                counts = counter.count_batch(cubes).tolist()
        finally:
            counter.close()
        assert counts == serial_counts

    def test_counting_pool_survives_alloc_fault_via_spill(
        self, tmp_path, baseline
    ):
        backend = CountingBackend(
            kind="process", n_workers=2, chunk_size=8, retry_backoff=0.01
        )
        with fault_injection(FaultSpec("packed_alloc", times=1)):
            result = run_detect(
                spill_dir=tmp_path / "spill", counting=backend
            )
        assert signature(result) == baseline
        assert result.stats["resilience"]["ladder"] == {
            "mask-storage": "sharded"
        }


class TestStatsPlumbing:
    def test_clean_run_reports_not_degraded(self, baseline):
        result = run_detect()
        assert signature(result) == baseline
        resilience = result.stats["resilience"]
        assert resilience["degraded"] is False
        assert resilience["retries"] == {}
        assert resilience["degradations"] == []

    def test_spill_dir_with_mmap_dir_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="spill_dir"):
            SubspaceOutlierDetector(
                mmap_dir=tmp_path / "a", spill_dir=tmp_path / "b"
            )
