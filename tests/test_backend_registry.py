"""The counting-backend registry and its conformance gate.

The registry (:mod:`repro.grid.backends`) is the single source of
truth for ``--count-backend`` choices, ``CountingBackend.kind``
validation, and which kernel runs inside pool workers — and no kernel
may serve counts without passing the differential self-check.  These
tests pin that contract:

* unknown names fail loudly *with the menu* (CLI exits 2 listing the
  registered backends; the API raises ``ValidationError`` naming them),
* a kernel that diverges from the reference — or lies about its stats —
  raises :class:`BackendConformanceError` and is **not** registered,
* duplicate registrations are rejected,
* the builtin kernels genuinely pass their own gate, on every tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.params import CountingBackend
from repro.exceptions import ValidationError
from repro.grid import backends as reg
from repro.grid.backends import (
    BackendConformanceError,
    BackendSpec,
    get_backend,
    register_backend,
    register_kernel,
    registered_backends,
    registered_kernels,
    resolve_kernel,
    verify_kernel,
)
from repro.grid.kernels import batch_counts
from repro.grid.native import available_tiers, forced_tier, native_batch_counts

BUILTIN_BACKENDS = ["native", "process", "process-native", "serial"]


@pytest.fixture
def scratch_registry():
    """Roll back any names a test registers (the registry is module
    state shared by the whole process)."""
    kernels = dict(reg._KERNELS)
    backends = dict(reg._BACKENDS)
    verified = set(reg._VERIFIED)
    yield
    reg._KERNELS.clear()
    reg._KERNELS.update(kernels)
    reg._BACKENDS.clear()
    reg._BACKENDS.update(backends)
    reg._VERIFIED.clear()
    reg._VERIFIED.update(verified)


def _diverging_kernel(stack, dims_arr, rng_arr, packed):
    # Off-by-one on every count: must never pass the gate.
    counts, stats = batch_counts(stack, dims_arr, rng_arr, packed)
    return counts + 1, stats


def _stats_lying_kernel(stack, dims_arr, rng_arr, packed):
    counts, _ = batch_counts(stack, dims_arr, rng_arr, packed)
    return counts, {"words": 0}  # missing the required keys


class TestRegistryMenu:
    def test_builtin_backends_registered(self):
        assert registered_backends() == BUILTIN_BACKENDS

    def test_builtin_kernels_registered(self):
        assert registered_kernels() == ["native", "numpy"]

    def test_get_backend_unknown_lists_menu(self):
        with pytest.raises(ValidationError) as exc:
            get_backend("bogus")  # repro-lint: disable=RPL014
        message = str(exc.value)
        for name in BUILTIN_BACKENDS:
            assert name in message

    def test_counting_backend_kind_validated_via_registry(self):
        with pytest.raises(ValidationError) as exc:
            CountingBackend(kind="bogus")  # repro-lint: disable=RPL014
        assert "native" in str(exc.value)

    def test_resolve_kernel_unknown(self):
        with pytest.raises(ValidationError, match="numpy"):
            resolve_kernel("bogus")  # repro-lint: disable=RPL014

    def test_backend_spec_rejects_empty_name(self):
        with pytest.raises(ValidationError):
            BackendSpec(name="", kernel="numpy", uses_pool=False,
                        description="x")


class TestCLIMenu:
    def test_unknown_count_backend_exits_2_with_menu(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                ["detect", "--dataset", "machine",
                 "--count-backend", "bogus"]
            )
        assert exc.value.code == 2
        err = capsys.readouterr().err
        for name in BUILTIN_BACKENDS:
            assert name in err

    def test_native_backend_accepted(self, capsys):
        code = main(
            ["detect", "--dataset", "machine", "--method", "brute_force",
             "--top", "3", "--count-backend", "native"]
        )
        assert code == 0
        assert "Top 3 outliers" in capsys.readouterr().out


class TestConformanceGate:
    def test_builtin_native_kernel_passes_every_tier(self):
        for tier in available_tiers():
            with forced_tier(tier):
                verify_kernel(native_batch_counts, f"native[{tier}]")

    def test_diverging_kernel_raises_and_is_not_registered(
        self, scratch_registry
    ):
        with pytest.raises(BackendConformanceError, match="differential"):
            register_kernel("tests-diverging", _diverging_kernel)
        assert "tests-diverging" not in registered_kernels()

    def test_stats_contract_enforced(self, scratch_registry):
        with pytest.raises(BackendConformanceError, match="stats"):
            register_kernel("tests-lying", _stats_lying_kernel)
        assert "tests-lying" not in registered_kernels()

    def test_backend_over_unverified_bad_kernel_raises(
        self, scratch_registry
    ):
        # Sneaking the kernel in unverified does not help: registering a
        # backend over it re-runs the gate and refuses.
        register_kernel("tests-sneaky", _diverging_kernel, verify=False)
        with pytest.raises(BackendConformanceError):
            register_backend(
                BackendSpec(
                    name="tests-sneaky-backend",
                    kernel="tests-sneaky",
                    uses_pool=False,
                    description="should never register",
                )
            )
        assert "tests-sneaky-backend" not in registered_backends()

    def test_good_custom_kernel_registers(self, scratch_registry):
        register_kernel("tests-clone", batch_counts)
        register_backend(
            BackendSpec(
                name="tests-clone-backend",
                kernel="tests-clone",
                uses_pool=False,
                description="reference clone",
            )
        )
        assert get_backend("tests-clone-backend").kernel == "tests-clone"
        # ...and the params layer immediately accepts the new kind.
        assert CountingBackend(kind="tests-clone-backend").kind == (
            "tests-clone-backend"
        )

    def test_duplicate_kernel_rejected(self, scratch_registry):
        with pytest.raises(ValidationError, match="already"):
            register_kernel("numpy", batch_counts, verify=False)

    def test_duplicate_backend_rejected(self, scratch_registry):
        with pytest.raises(ValidationError, match="already"):
            register_backend(
                BackendSpec(
                    name="serial", kernel="numpy", uses_pool=False,
                    description="dup",
                ),
                verify=False,
            )

    def test_backend_requires_registered_kernel(self, scratch_registry):
        with pytest.raises(ValidationError, match="unregistered"):
            register_backend(
                BackendSpec(  # repro-lint: disable=RPL014
                    name="tests-orphan", kernel="no-such-kernel",
                    uses_pool=False, description="orphan",
                )
            )

    def test_verify_kernel_names_divergence(self):
        with pytest.raises(BackendConformanceError, match="candidate"):
            verify_kernel(_diverging_kernel)


class TestCounterIntegration:
    def test_counter_reports_backend_kernel(self, rng):
        from repro.grid.cells import CellAssignment
        from repro.grid.packed_counter import PackedCubeCounter

        codes = rng.integers(0, 3, size=(50, 4)).astype(np.int16)
        counter = PackedCubeCounter(
            CellAssignment(codes, 3),
            backend=CountingBackend(kind="native"),
        )
        try:
            info = counter.kernel_info()
            assert info["backend"] == "native"
            assert info["kernel"] == "native"
            assert info["tier"] in available_tiers()
            assert counter.cache_stats()["kernel"] == "native"
        finally:
            counter.close()
