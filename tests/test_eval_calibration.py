"""Tests for permutation calibration and the elitism knob."""

import numpy as np
import pytest

from repro import EvolutionaryConfig, SubspaceOutlierDetector
from repro.eval.calibration import (
    column_permuted,
    empirical_p_value,
    permutation_null_best_coefficients,
)
from repro.exceptions import ValidationError
from repro.search.evolutionary.engine import EvolutionarySearch


class TestColumnPermuted:
    def test_marginals_preserved(self, rng):
        data = rng.normal(size=(100, 4))
        shuffled = column_permuted(data, random_state=0)
        for j in range(4):
            np.testing.assert_allclose(
                np.sort(shuffled[:, j]), np.sort(data[:, j])
            )

    def test_structure_destroyed(self, rng):
        latent = rng.normal(size=2000)
        data = np.column_stack(
            [latent + rng.normal(scale=0.05, size=2000),
             latent + rng.normal(scale=0.05, size=2000)]
        )
        assert np.corrcoef(data[:, 0], data[:, 1])[0, 1] > 0.95
        shuffled = column_permuted(data, random_state=0)
        assert abs(np.corrcoef(shuffled[:, 0], shuffled[:, 1])[0, 1]) < 0.1

    def test_input_not_mutated(self, rng):
        data = rng.normal(size=(20, 3))
        original = data.copy()
        column_permuted(data, random_state=0)
        np.testing.assert_array_equal(data, original)

    def test_missing_values_travel(self, rng):
        data = rng.normal(size=(50, 2))
        data[:10, 0] = np.nan
        shuffled = column_permuted(data, random_state=0)
        assert np.isnan(shuffled[:, 0]).sum() == 10


class TestPermutationNull:
    @pytest.fixture(scope="class")
    def correlated(self):
        rng = np.random.default_rng(3)
        latent = rng.normal(size=400)
        data = rng.normal(size=(400, 6))
        data[:, 0] = latent + rng.normal(scale=0.1, size=400)
        data[:, 1] = latent + rng.normal(scale=0.1, size=400)
        return data

    @staticmethod
    def factory():
        return SubspaceOutlierDetector(
            dimensionality=2, n_ranges=4, n_projections=5, method="brute_force"
        )

    def test_real_structure_beats_null(self, correlated):
        real = self.factory().detect(correlated).best_coefficient
        null = permutation_null_best_coefficients(
            correlated, self.factory, n_permutations=8, random_state=0
        )
        # The correlated pair's empty corners are far sparser than
        # anything structureless data can produce.
        p = empirical_p_value(real, null)
        assert p <= 2 / 9
        assert real < np.nanmin(null)

    def test_null_length(self, correlated):
        null = permutation_null_best_coefficients(
            correlated, self.factory, n_permutations=3, random_state=1
        )
        assert null.shape == (3,)

    def test_factory_type_checked(self, correlated):
        with pytest.raises(ValidationError):
            permutation_null_best_coefficients(
                correlated, lambda: "not a detector", n_permutations=1
            )


class TestEmpiricalPValue:
    def test_plus_one_correction(self):
        assert empirical_p_value(-10.0, [-1.0, -2.0]) == pytest.approx(1 / 3)
        assert empirical_p_value(-1.5, [-1.0, -2.0]) == pytest.approx(2 / 3)

    def test_never_zero(self):
        assert empirical_p_value(-100.0, [-1.0] * 99) > 0

    def test_nan_null_entries_do_not_count(self):
        p = empirical_p_value(-5.0, [float("nan"), -1.0])
        assert p == pytest.approx(1 / 3)

    def test_nan_observed_rejected(self):
        with pytest.raises(ValidationError):
            empirical_p_value(float("nan"), [-1.0])

    def test_empty_null_rejected(self):
        with pytest.raises(ValidationError):
            empirical_p_value(-1.0, [])


class TestElitism:
    def test_elites_survive_each_generation(self, small_counter):
        outcome_plain = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=20, max_generations=20, elitism=0
            ),
            random_state=4,
        ).run()
        outcome_elite = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=20, max_generations=20, elitism=3
            ),
            random_state=4,
        ).run()
        # Both run to completion and mine the requested set.
        assert outcome_plain.projections and outcome_elite.projections

    def test_elitism_validated(self):
        with pytest.raises(ValidationError):
            EvolutionaryConfig(population_size=10, elitism=10)
        with pytest.raises(ValidationError):
            EvolutionaryConfig(elitism=-1)

    def test_elitism_monotone_population_best(self, small_counter):
        # With elitism, the per-generation population best never regresses.
        outcome = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(
                population_size=20,
                max_generations=25,
                elitism=2,
                track_history=True,
            ),
            random_state=7,
        ).run()
        best = [r.population_best for r in outcome.history]
        assert all(b <= a + 1e-12 for a, b in zip(best, best[1:], strict=False))