"""Tests for De Jong convergence, EvolutionaryConfig, and fitness evaluation."""

import pytest

from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.convergence import (
    DeJongConvergence,
    gene_convergence_profile,
)
from repro.search.evolutionary.encoding import Solution, WILDCARD_GENE
from repro.search.evolutionary.population import (
    FitnessEvaluator,
    INFEASIBLE_FITNESS,
)
from repro.sparsity.coefficient import sparsity_coefficient


class TestGeneConvergenceProfile:
    def test_uniform_population_fully_converged(self):
        population = [Solution([0, WILDCARD_GENE])] * 10
        assert gene_convergence_profile(population) == [1.0, 1.0]

    def test_mixed_population(self):
        population = [Solution([0])] * 3 + [Solution([1])]
        assert gene_convergence_profile(population) == [0.75]

    def test_wildcard_counts_as_value(self):
        population = [Solution([WILDCARD_GENE])] * 19 + [Solution([2])]
        assert gene_convergence_profile(population) == [0.95]

    def test_empty_population_rejected(self):
        with pytest.raises(ValidationError):
            gene_convergence_profile([])

    def test_ragged_population_rejected(self):
        with pytest.raises(ValidationError):
            gene_convergence_profile([Solution([0]), Solution([0, 1])])


class TestDeJong:
    def test_converged_at_threshold(self):
        population = [Solution([0])] * 19 + [Solution([1])]
        assert DeJongConvergence(0.95).has_converged(population)

    def test_not_converged_below_threshold(self):
        population = [Solution([0])] * 18 + [Solution([1])] * 2
        assert not DeJongConvergence(0.95).has_converged(population)

    def test_all_genes_must_converge(self):
        population = [Solution([0, 0])] * 10 + [Solution([0, 1])] * 5
        criterion = DeJongConvergence(0.95)
        assert criterion.n_converged_genes(population) == 1
        assert not criterion.has_converged(population)

    def test_threshold_validated(self):
        with pytest.raises(ValidationError):
            DeJongConvergence(0.2)


class TestEvolutionaryConfig:
    def test_defaults_valid(self):
        cfg = EvolutionaryConfig()
        assert cfg.population_size >= 2
        assert cfg.mutation_swap_probability == cfg.mutation_flip_probability

    def test_frozen(self):
        cfg = EvolutionaryConfig()
        with pytest.raises(Exception):
            cfg.population_size = 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"population_size": 1},
            {"mutation_swap_probability": 1.5},
            {"crossover_rate": -0.1},
            {"max_generations": 0},
            {"convergence_threshold": 0.3},
            {"stall_generations": 0},
            {"max_seconds": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValidationError):
            EvolutionaryConfig(**kwargs)


class TestFitnessEvaluator:
    def test_feasible_fitness_is_sparsity(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=2)
        s = Solution.from_string("12****")
        cube = Subspace((0, 1), (0, 1))
        expected = sparsity_coefficient(
            small_counter.count(cube),
            small_counter.n_points,
            small_counter.n_ranges,
            2,
        )
        assert evaluator.fitness(s) == pytest.approx(expected)

    def test_infeasible_gets_penalty(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=2)
        assert evaluator.fitness(Solution.from_string("123***")) == INFEASIBLE_FITNESS
        assert evaluator.score(Solution.from_string("123***")) is None

    def test_partial_fitness_uses_own_dimensionality(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=3)
        partial = Solution.from_string("1*****")
        cube = Subspace((0,), (0,))
        expected = sparsity_coefficient(
            small_counter.count(cube),
            small_counter.n_points,
            small_counter.n_ranges,
            1,
        )
        assert evaluator.partial_fitness(partial) == pytest.approx(expected)

    def test_all_wildcard_partial_is_zero(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=2)
        assert evaluator.partial_fitness(Solution.from_string("******")) == 0.0

    def test_score_carries_count(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=1)
        scored = evaluator.score(Solution.from_string("3*****"))
        assert scored is not None
        assert scored.count == small_counter.count(Subspace((0,), (2,)))

    def test_evaluation_counter(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=1)
        evaluator.fitness(Solution.from_string("1*****"))
        evaluator.fitness(Solution.from_string("2*****"))
        assert evaluator.n_evaluations == 2

    def test_fitnesses_batch(self, small_counter):
        evaluator = FitnessEvaluator(small_counter, dimensionality=1)
        sols = [Solution.from_string("1*****"), Solution.from_string("12****")]
        fits = evaluator.fitnesses(sols)
        assert len(fits) == 2
        assert fits[1] == INFEASIBLE_FITNESS

    def test_k_exceeds_dims_rejected(self, small_counter):
        with pytest.raises(ValidationError):
            FitnessEvaluator(small_counter, dimensionality=99)

    def test_rejects_non_counter(self):
        with pytest.raises(ValidationError):
            FitnessEvaluator("nope", 2)
