"""Tests for minimal abnormal subspaces (intensional knowledge)."""

import numpy as np
import pytest

from repro.core.intensional import minimal_abnormal_subspaces
from repro.exceptions import ValidationError
from repro.grid.counter import CubeCounter
from repro.grid.discretizer import EquiDepthDiscretizer
from repro.sparsity.coefficient import sparsity_coefficient


@pytest.fixture
def planted_counter(rng):
    """300 x 6 with point 7 in a rare 2-d combination on dims (0, 1)."""
    n = 300
    latent = rng.normal(size=n)
    data = rng.normal(size=(n, 6))
    data[:, 0] = latent + rng.normal(scale=0.1, size=n)
    data[:, 1] = latent + rng.normal(scale=0.1, size=n)
    data[7, 0] = np.quantile(data[:, 0], 0.05)
    data[7, 1] = np.quantile(data[:, 1], 0.95)
    cells = EquiDepthDiscretizer(5).fit_transform(data)
    return CubeCounter(cells)


class TestMinimalSubspaces:
    def test_finds_planted_combination(self, planted_counter):
        found = minimal_abnormal_subspaces(
            7, planted_counter, threshold=-2.5, max_dimensionality=2
        )
        assert any(p.subspace.dims == (0, 1) for p in found)

    def test_all_found_are_abnormal_and_contain_point(self, planted_counter):
        found = minimal_abnormal_subspaces(
            7, planted_counter, threshold=-2.0, max_dimensionality=3
        )
        codes = planted_counter.cells.codes
        for projection in found:
            assert projection.coefficient <= -2.0
            assert projection.subspace.covers(codes)[7]

    def test_minimality(self, planted_counter):
        found = minimal_abnormal_subspaces(
            7, planted_counter, threshold=-2.0, max_dimensionality=3
        )
        dim_sets = [frozenset(p.subspace.dims) for p in found]
        for i, a in enumerate(dim_sets):
            for j, b in enumerate(dim_sets):
                if i != j:
                    assert not a < b, "a returned subspace contains another"

    def test_no_single_dim_abnormal_on_equidepth(self, planted_counter):
        # Equi-depth 1-d ranges all hold ~N/phi points: never abnormal.
        found = minimal_abnormal_subspaces(
            7, planted_counter, threshold=-2.0, max_dimensionality=1
        )
        assert found == []

    def test_sorted_most_negative_first(self, planted_counter):
        found = minimal_abnormal_subspaces(
            7, planted_counter, threshold=-1.5, max_dimensionality=2
        )
        coefficients = [p.coefficient for p in found]
        assert coefficients == sorted(coefficients)

    def test_normal_point_yields_nothing_strict(self, planted_counter):
        # With a very strict threshold an average point has no findings.
        found = minimal_abnormal_subspaces(
            0, planted_counter, threshold=-4.3, max_dimensionality=2
        )
        codes = planted_counter.cells.codes
        for projection in found:
            assert projection.subspace.covers(codes)[0]

    def test_missing_dims_skipped(self, rng):
        data = rng.normal(size=(100, 3))
        data[5, 0] = np.nan
        cells = EquiDepthDiscretizer(4).fit_transform(data)
        counter = CubeCounter(cells)
        found = minimal_abnormal_subspaces(
            5, counter, threshold=-0.5, max_dimensionality=2
        )
        for projection in found:
            assert 0 not in projection.subspace.dims

    def test_counts_match_counter(self, planted_counter):
        found = minimal_abnormal_subspaces(
            7, planted_counter, threshold=-2.0, max_dimensionality=2
        )
        for projection in found:
            count = planted_counter.count(projection.subspace)
            assert projection.count == count
            assert projection.coefficient == pytest.approx(
                sparsity_coefficient(
                    count,
                    planted_counter.n_points,
                    planted_counter.n_ranges,
                    projection.dimensionality,
                )
            )


class TestValidation:
    def test_point_out_of_range(self, planted_counter):
        with pytest.raises(ValidationError):
            minimal_abnormal_subspaces(9999, planted_counter)

    def test_positive_threshold_rejected(self, planted_counter):
        with pytest.raises(ValidationError):
            minimal_abnormal_subspaces(0, planted_counter, threshold=1.0)

    def test_candidate_cap(self, planted_counter):
        with pytest.raises(ValidationError, match="max_candidates"):
            minimal_abnormal_subspaces(
                0, planted_counter, max_dimensionality=3, max_candidates=5
            )
