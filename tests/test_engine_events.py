"""Tests for the engine layer: events, sinks, registry, protocol driving.

The event bus and registry are the refactor's new public surface; this
file covers their contracts directly — vocabulary enforcement, sink
behavior (in-memory, JSONL trace, composite), registry CRUD including
plugin engines, the prepare/step/finalize protocol being equivalent to
``run()``, ``chunk_retry`` emission from the fault-tolerant counting
pool, and the CLI's ``--trace-file`` / ``--search`` wiring.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.detector import SubspaceOutlierDetector
from repro.core.params import CountingBackend, FaultPlan
from repro.engine.context import RunContext
from repro.engine.events import (
    EVENT_TYPES,
    CompositeSink,
    Event,
    InMemoryEventSink,
    JsonlTraceSink,
    NullSink,
    emit_event,
    register_event_type,
)
from repro.engine.registry import (
    create_engine,
    engine_names,
    engine_spec,
    register_engine,
    unregister_engine,
)
from repro.engine.stats import StatsAssemblySink, merge_backend_health
from repro.exceptions import ValidationError
from repro.grid.counter import CubeCounter
from repro.search.evolutionary.config import EvolutionaryConfig
from repro.search.evolutionary.engine import EvolutionarySearch
from repro.search.local import RandomSearch


# ----------------------------------------------------------------------
# Events and sinks


class TestEmitEvent:
    def test_none_sink_is_noop(self):
        emit_event(None, "run_started", algorithm="x")  # must not raise

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError, match="unknown event type"):
            emit_event(InMemoryEventSink(), "made_up_event")  # repro-lint: disable=RPL010

    def test_register_event_type_widens_vocabulary(self):
        name = "plugin_tick_test"
        assert name not in EVENT_TYPES
        try:
            register_event_type(name)
            sink = InMemoryEventSink()
            emit_event(sink, name, n=1)
            assert sink.of_type(name)[0].payload == {"n": 1}
        finally:
            EVENT_TYPES.discard(name)

    def test_register_rejects_empty(self):
        with pytest.raises(ValidationError):
            register_event_type("")

    def test_payload_and_timestamp(self):
        sink = InMemoryEventSink()
        emit_event(sink, "generation_end", generation=3)
        event = sink.events[0]
        assert event.type == "generation_end"
        assert event.payload == {"generation": 3}
        assert event.timestamp > 0


class TestInMemoryEventSink:
    def test_order_and_helpers(self):
        sink = InMemoryEventSink()
        emit_event(sink, "run_started")
        emit_event(sink, "generation_end", generation=0)
        emit_event(sink, "generation_end", generation=1)
        emit_event(sink, "engine_finished")
        assert len(sink) == 4
        assert sink.types() == ["run_started", "generation_end", "engine_finished"]
        assert [e.payload["generation"] for e in sink.of_type("generation_end")] == [
            0,
            1,
        ]

    def test_context_manager(self):
        with InMemoryEventSink() as sink:
            sink.emit(Event(type="run_started"))
        assert len(sink) == 1  # close() keeps the recorded events


class TestJsonlTraceSink:
    def test_lines_parse_and_seq_increments(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            emit_event(sink, "run_started", algorithm="demo")
            emit_event(sink, "level_end", depth=1, n_survivors=4)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [line["seq"] for line in lines] == [0, 1]
        assert lines[0]["type"] == "run_started"
        assert lines[1]["n_survivors"] == 4

    def test_lazy_open_no_events_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        with JsonlTraceSink(path):
            pass
        assert not path.exists()

    def test_non_json_payload_stringified(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        emit_event(sink, "run_started", weird=np.int64(7))
        sink.close()
        sink.close()  # idempotent
        record = json.loads(path.read_text())
        assert record["weird"] in (7, "7")


class TestCompositeSink:
    def test_fans_out_and_skips_none(self):
        a, b = InMemoryEventSink(), InMemoryEventSink()
        composite = CompositeSink(a, None, b)
        emit_event(composite, "run_started")
        assert len(a) == len(b) == 1
        composite.close()

    def test_null_sink_drops(self):
        emit_event(NullSink(), "run_started")


class TestStatsHelpers:
    def test_merge_backend_health_sums_and_ors(self):
        merged = merge_backend_health(
            [
                {"retries": 1, "timeouts": 0, "pool_degraded": False},
                {"retries": 2, "fallbacks": 3, "pool_degraded": True},
            ]
        )
        assert merged["retries"] == 3
        assert merged["fallbacks"] == 3
        assert merged["pool_degraded"] is True

    def test_stats_sink_counts_events(self, small_counter):
        sink = StatsAssemblySink()
        engine = RandomSearch(
            small_counter, 2, 5, max_evaluations=200, random_state=0
        )
        outcome = engine.run(context=RunContext(counter=small_counter, sink=sink))
        stats = sink.assemble(outcome, small_counter, elapsed=1.5)
        assert stats["total_elapsed_seconds"] == 1.5
        assert stats["stopped_reason"] == outcome.stopped_reason
        assert stats["events"]["run_started"] == 1
        assert stats["events"]["engine_finished"] == 1
        assert "counter_stats" in stats and "backend_health" in stats


# ----------------------------------------------------------------------
# Registry


class TestRegistry:
    def test_builtins_registered(self):
        names = engine_names()
        for name in (
            "evolutionary",
            "brute_force",
            "random",
            "hill_climbing",
            "simulated_annealing",
        ):
            assert name in names

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValidationError, match="evolutionary"):
            engine_spec("no_such_engine")

    def test_checkpoint_support_flags(self):
        assert engine_spec("evolutionary").supports_checkpoint
        assert engine_spec("brute_force").supports_checkpoint
        assert not engine_spec("random").supports_checkpoint

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):
            register_engine("evolutionary", lambda *a, **k: None)

    def test_kwargs_filtered_per_engine(self, small_counter):
        # `patience` belongs to hill climbing only; `config` to the GA.
        engine = create_engine(
            "random",
            small_counter,
            2,
            5,
            max_evaluations=100,
            patience=5,
            config=EvolutionaryConfig(),
            random_state=0,
        )
        assert isinstance(engine, RandomSearch)
        assert engine.max_evaluations == 100

    def test_plugin_register_use_unregister(self, small_counter, small_data):
        calls = {}

        @register_engine("random_twin_test", description="test plugin")
        def _factory(counter, dimensionality, n_projections, **kwargs):
            calls["kwargs"] = dict(kwargs)
            return RandomSearch(
                counter,
                dimensionality,
                n_projections,
                max_evaluations=150,
                random_state=kwargs.get("random_state"),
            )

        try:
            assert "random_twin_test" in engine_names()
            detector = SubspaceOutlierDetector(
                dimensionality=2,
                n_ranges=4,
                n_projections=5,
                method="random_twin_test",
                random_state=0,
            )
            result = detector.detect(small_data)
            assert result.stats["algorithm"] == "RandomSearch"
            assert calls["kwargs"].get("random_state") == 0
        finally:
            unregister_engine("random_twin_test")
        with pytest.raises(ValidationError):
            engine_spec("random_twin_test")

    def test_replace_allows_override(self):
        spec = engine_spec("random")
        register_engine(
            "random", spec.factory, accepts=spec.accepts, replace=True
        )
        assert engine_spec("random").factory is spec.factory


# ----------------------------------------------------------------------
# Protocol driving


class TestProtocolDriving:
    def test_manual_drive_equals_run(self, small_counter):
        config = EvolutionaryConfig(population_size=20, max_generations=8)

        def build():
            return EvolutionarySearch(
                small_counter, 2, 5, config=config, random_state=11
            )

        auto = build().run()

        engine = build()
        context = RunContext(counter=small_counter)
        engine.prepare(context)
        steps = 0
        while engine.step(context):
            steps += 1
        manual = engine.finalize(context)

        assert steps > 0
        assert manual.projections == auto.projections
        assert manual.stats["evaluations"] == auto.stats["evaluations"]
        assert manual.stopped_reason == auto.stopped_reason

    def test_early_finalize_is_cancellation(self, small_counter):
        engine = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(population_size=20, max_generations=50),
            random_state=0,
        )
        context = RunContext(counter=small_counter, sink=InMemoryEventSink())
        engine.prepare(context)
        assert engine.step(context)
        outcome = engine.finalize(context)
        assert outcome.stopped_reason == "cancelled"
        assert not outcome.completed
        finished = context.sink.of_type("engine_finished")
        assert len(finished) == 1
        assert finished[0].payload["stopped_reason"] == "cancelled"

    def test_run_emits_bracketing_events(self, small_counter):
        sink = InMemoryEventSink()
        engine = EvolutionarySearch(
            small_counter,
            2,
            5,
            config=EvolutionaryConfig(population_size=20, max_generations=5),
            random_state=0,
        )
        engine.run(context=RunContext(counter=small_counter, sink=sink))
        types = sink.types()
        assert types[0] == "run_started"
        assert types[-1] == "engine_finished"
        assert sink.of_type("generation_end")


# ----------------------------------------------------------------------
# chunk_retry from the fault-tolerant counting pool


class TestChunkRetryEvents:
    def test_worker_kill_emits_chunk_retry(self):
        import itertools

        rng = np.random.default_rng(0)
        from repro.grid.cells import CellAssignment

        codes = rng.integers(0, 3, size=(150, 5), dtype=np.int16)
        cells = CellAssignment(codes=codes, n_ranges=3)
        backend = CountingBackend(
            kind="process",
            n_workers=2,
            chunk_size=16,
            retry_backoff=0.01,
            fault_plan=FaultPlan(kill_worker_on_chunk=1, trigger_limit=1),
        )
        counter = CubeCounter(cells, backend=backend)
        sink = InMemoryEventSink()
        from repro.core.subspace import Subspace

        # Distinct cubes (the memo cache dedupes repeats) spanning every
        # 2-dim pair, enough to fan out to the worker pool.
        cubes = [
            Subspace(dims, ranges)
            for dims in itertools.combinations(range(5), 2)
            for ranges in itertools.product(range(3), repeat=2)
        ]
        try:
            with counter.runtime_binding(None, sink):
                counter.count_batch(cubes)
        finally:
            counter.close()
        retries = sink.of_type("chunk_retry")
        assert retries, "expected at least one chunk_retry event"
        for event in retries:
            assert event.payload["action"] in ("retry", "serial_fallback")
            assert "chunk_id" in event.payload


# ----------------------------------------------------------------------
# CLI wiring


class TestCliTraceAndSearch:
    def test_trace_file_writes_parseable_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        code = main(
            [
                "detect",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--trace-file",
                str(trace),
            ]
        )
        assert code == 0
        capsys.readouterr()
        lines = [json.loads(line) for line in trace.read_text().splitlines()]
        assert lines, "trace file must not be empty"
        types = {line["type"] for line in lines}
        assert "run_started" in types
        assert "engine_finished" in types
        assert [line["seq"] for line in lines] == list(range(len(lines)))

    def test_search_flag_overrides_method(self, capsys):
        code = main(
            [
                "detect",
                "--dataset",
                "machine",
                "--method",
                "brute_force",
                "--search",
                "random",
                "--output",
                "json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["algorithm"] == "RandomSearch"

    def test_search_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            main(["detect", "--dataset", "machine", "--search", "bogus"])
