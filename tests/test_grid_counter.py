"""Tests for CubeCounter (the n(D) engine)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.subspace import Subspace
from repro.exceptions import ValidationError
from repro.grid.cells import CellAssignment, MISSING_CELL
from repro.grid.counter import CubeCounter

from conftest import naive_cube_count


def counter_from(codes, phi):
    return CubeCounter(CellAssignment(np.asarray(codes, dtype=np.int16), phi))


class TestCounting:
    def test_empty_subspace_counts_all(self, small_counter):
        assert small_counter.count(Subspace.empty()) == small_counter.n_points

    def test_one_dim_count_equals_range_count(self, small_counter):
        expected = small_counter.cells.range_counts(2)
        for rng_ in range(small_counter.n_ranges):
            assert small_counter.count(Subspace((2,), (rng_,))) == expected[rng_]

    def test_matches_naive_on_random_cubes(self, small_counter, rng):
        for _ in range(25):
            k = int(rng.integers(1, 4))
            dims = tuple(sorted(rng.choice(6, size=k, replace=False).tolist()))
            ranges = tuple(int(r) for r in rng.integers(0, 5, size=k))
            cube = Subspace(dims, ranges)
            assert small_counter.count(cube) == naive_cube_count(
                small_counter.cells.codes, cube
            )

    def test_counts_monotone_under_extension(self, small_counter):
        base = Subspace((0,), (1,))
        base_count = small_counter.count(base)
        for rng_ in range(small_counter.n_ranges):
            assert small_counter.count(base.extended(3, rng_)) <= base_count

    def test_missing_points_match_nothing(self):
        counter = counter_from([[MISSING_CELL], [0], [0]], phi=2)
        assert counter.count(Subspace((0,), (0,))) == 2
        assert counter.count(Subspace((0,), (1,))) == 0

    def test_mask_fresh_copy(self, small_counter):
        cube = Subspace((0,), (0,))
        mask = small_counter.mask(cube)
        mask[:] = False
        assert small_counter.count(cube) > 0


class TestExtensionCounts:
    def test_sums_to_observed(self, small_counter):
        base = small_counter.mask(Subspace((0,), (2,)))
        counts = small_counter.extension_counts(base, 1)
        # Points missing on dim 1 are absent from every bucket.
        observed = base & (small_counter.cells.codes[:, 1] >= 0)
        assert counts.sum() == observed.sum()

    def test_matches_individual_counts(self, small_counter):
        base_cube = Subspace((0,), (2,))
        counts = small_counter.extension_counts(small_counter.mask(base_cube), 4)
        for rng_ in range(small_counter.n_ranges):
            assert counts[rng_] == small_counter.count(base_cube.extended(4, rng_))

    def test_invalid_dim(self, small_counter):
        with pytest.raises(ValidationError):
            small_counter.extension_counts(
                np.ones(small_counter.n_points, dtype=bool), 99
            )


class TestCoveredPoints:
    def test_indices_sorted_and_consistent(self, small_counter):
        cube = Subspace((1, 3), (0, 4))
        points = small_counter.covered_points(cube)
        assert (np.diff(points) > 0).all() or len(points) <= 1
        assert len(points) == small_counter.count(cube)

    def test_fraction(self, small_counter):
        cube = Subspace((0,), (0,))
        assert small_counter.fraction(cube) == pytest.approx(
            small_counter.count(cube) / small_counter.n_points
        )


class TestCache:
    def test_cache_hit_counted(self, small_cells):
        counter = CubeCounter(small_cells, cache_size=10)
        cube = Subspace((0, 1), (0, 0))
        first = counter.count(cube)
        second = counter.count(cube)
        assert first == second
        assert counter.n_cache_hits == 1

    def test_cache_disabled(self, small_cells):
        counter = CubeCounter(small_cells, cache_size=0)
        cube = Subspace((0,), (0,))
        counter.count(cube)
        counter.count(cube)
        assert counter.n_cache_hits == 0
        assert counter.cache_stats()["cache_entries"] == 0

    def test_cache_eviction_bounded(self, small_cells):
        counter = CubeCounter(small_cells, cache_size=3)
        for rng_ in range(5):
            counter.count(Subspace((0,), (rng_,)))
        assert counter.cache_stats()["cache_entries"] <= 3

    def test_clear_cache(self, small_counter):
        small_counter.count(Subspace((0,), (0,)))
        small_counter.clear_cache()
        assert small_counter.cache_stats()["cache_entries"] == 0

    def test_cache_size_zero_allocates_no_cache(self, small_cells):
        # Regression: cache_size=0 used to keep a dead OrderedDict on
        # the hot path; now caching is truly disabled.
        counter = CubeCounter(small_cells, cache_size=0)
        assert counter._cache is None
        counter.count(Subspace((0,), (0,)))
        counter.clear_cache()  # must not raise with no cache
        assert counter._cache is None

    def test_hit_miss_accounting(self, small_cells):
        counter = CubeCounter(small_cells, cache_size=10)
        a, b = Subspace((0,), (0,)), Subspace((0,), (1,))
        counter.count(a)   # miss
        counter.count(a)   # hit
        counter.count(b)   # miss
        counter.count(a)   # hit
        stats = counter.cache_stats()
        assert stats["count_calls"] == 4
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 2
        assert stats["cache_entries"] == 2

    def test_lru_eviction_order(self, small_cells):
        counter = CubeCounter(small_cells, cache_size=2)
        a, b, c = (Subspace((0,), (r,)) for r in range(3))
        counter.count(a)
        counter.count(b)
        counter.count(a)   # refresh a: b is now least recently used
        counter.count(c)   # evicts b
        hits = counter.n_cache_hits
        counter.count(a)   # still cached
        assert counter.n_cache_hits == hits + 1
        counter.count(b)   # evicted => recount, not a hit
        assert counter.n_cache_hits == hits + 1

    def test_batch_duplicates_count_as_hits(self, small_cells):
        counter = CubeCounter(small_cells, cache_size=10)
        cube = Subspace((0, 1), (0, 0))
        counts = counter.count_batch([cube, cube, cube])
        assert len(set(counts.tolist())) == 1
        stats = counter.cache_stats()
        # One real count; the in-batch duplicates resolve via dedup.
        assert stats["cache_hits"] == 2
        assert stats["cache_misses"] == 1
        # A later batch answers straight from the memo.
        counter.count_batch([cube])
        assert counter.cache_stats()["cache_hits"] == 3

    def test_batch_with_cache_disabled_matches(self, small_cells):
        cached = CubeCounter(small_cells, cache_size=10)
        uncached = CubeCounter(small_cells, cache_size=0)
        cubes = [Subspace((0, 1), (r, r)) for r in range(5)] * 2
        assert cached.count_batch(cubes).tolist() == (
            uncached.count_batch(cubes).tolist()
        )
        assert uncached.cache_stats()["cache_entries"] == 0


class TestValidationErrors:
    def test_rejects_non_cells(self):
        with pytest.raises(ValidationError):
            CubeCounter(np.zeros((2, 2)))

    def test_rejects_foreign_subspace_dim(self, small_counter):
        with pytest.raises(ValidationError):
            small_counter.count(Subspace((99,), (0,)))

    def test_rejects_out_of_range_range(self, small_counter):
        with pytest.raises(ValidationError):
            small_counter.count(Subspace((0,), (99,)))

    def test_rejects_non_subspace(self, small_counter):
        with pytest.raises(ValidationError):
            small_counter.count("*1*")


@settings(max_examples=30, deadline=None)
@given(data=st.data(), phi=st.integers(2, 5))
def test_property_count_equals_naive(data, phi):
    """CubeCounter agrees with row-by-row scanning for arbitrary grids."""
    n_points = data.draw(st.integers(1, 40))
    n_dims = data.draw(st.integers(1, 4))
    codes = data.draw(
        st.lists(
            st.lists(st.integers(-1, phi - 1), min_size=n_dims, max_size=n_dims),
            min_size=n_points,
            max_size=n_points,
        )
    )
    counter = counter_from(codes, phi)
    k = data.draw(st.integers(1, n_dims))
    dims = tuple(sorted(data.draw(
        st.lists(st.integers(0, n_dims - 1), min_size=k, max_size=k, unique=True)
    )))
    ranges = tuple(data.draw(
        st.lists(st.integers(0, phi - 1), min_size=len(dims), max_size=len(dims))
    ))
    cube = Subspace(dims, ranges)
    assert counter.count(cube) == naive_cube_count(np.asarray(codes), cube)
