"""Tests for the parameter sweep utilities."""

import numpy as np
import pytest

from repro.eval.sweeps import render_sweep, sweep_detector_parameter
from repro.exceptions import ValidationError


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(9)
    latent = rng.normal(size=250)
    out = rng.normal(size=(250, 5))
    out[:, 0] = latent + rng.normal(scale=0.1, size=250)
    out[:, 1] = latent + rng.normal(scale=0.1, size=250)
    return out


BASE = dict(dimensionality=2, n_projections=8, method="brute_force")


class TestSweep:
    def test_phi_sweep_rows(self, data):
        rows = sweep_detector_parameter(
            data, "n_ranges", [3, 4, 5], base_kwargs=BASE
        )
        assert [row["n_ranges"] for row in rows] == [3, 4, 5]
        assert [row["phi"] for row in rows] == [3, 4, 5]
        assert all(row["quality"] < 0 for row in rows)

    def test_k_sweep(self, data):
        rows = sweep_detector_parameter(
            data,
            "dimensionality",
            [1, 2],
            base_kwargs=dict(n_ranges=4, n_projections=8, method="brute_force"),
        )
        assert [row["k"] for row in rows] == [1, 2]

    def test_method_sweep(self, data):
        from repro import EvolutionaryConfig

        rows = sweep_detector_parameter(
            data,
            "method",
            ["brute_force", "evolutionary"],
            base_kwargs=dict(
                dimensionality=2,
                n_ranges=4,
                n_projections=8,
                config=EvolutionaryConfig(population_size=20, max_generations=15),
                random_state=0,
            ),
        )
        brute, evo = rows
        # The GA never beats the exhaustive optimum.
        assert evo["best_coefficient"] >= brute["best_coefficient"] - 1e-9

    def test_unknown_parameter(self, data):
        with pytest.raises(ValidationError, match="parameter"):
            sweep_detector_parameter(data, "magic", [1])

    def test_conflicting_base_kwargs(self, data):
        with pytest.raises(ValidationError, match="base_kwargs"):
            sweep_detector_parameter(
                data, "n_ranges", [3], base_kwargs={"n_ranges": 4}
            )

    def test_elapsed_recorded(self, data):
        rows = sweep_detector_parameter(data, "n_ranges", [3], base_kwargs=BASE)
        assert rows[0]["elapsed_seconds"] > 0


class TestRender:
    def test_table_layout(self, data):
        rows = sweep_detector_parameter(
            data, "n_ranges", [3, 4], base_kwargs=BASE
        )
        text = render_sweep(rows, "n_ranges")
        lines = text.splitlines()
        assert "n_ranges" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            render_sweep([], "n_ranges")

    def test_nan_rendered_as_dash(self):
        rows = [
            {
                "n_ranges": 3,
                "quality": float("nan"),
                "best_coefficient": float("nan"),
                "n_outliers": 0,
                "n_projections_mined": 0,
                "elapsed_seconds": 0.01,
            }
        ]
        assert "-" in render_sweep(rows, "n_ranges")
